//! The concurrent serving front-end: bounded submission queue →
//! dispatcher (micro-batcher) → executor pool.
//!
//! Threads, no async runtime:
//!
//! * **Submitters** (any number of caller threads) hand a `(tenant,
//!   query)` pair to [`Server::submit`], which `try_send`s onto a bounded
//!   MPSC channel and returns a [`Ticket`] — a oneshot reply slot. A full
//!   channel rejects immediately with [`SubmitError::Overloaded`]: the
//!   submitter is never blocked by a slow model (backpressure is typed,
//!   not implicit).
//! * **The dispatcher** (one thread) pulls requests off the channel into
//!   per-tenant lanes of a [`MicroBatcher`] and flushes a lane when it
//!   reaches `max_batch` or its oldest request ages past `max_delay`,
//!   whichever first. At flush time it consults the degradation ladder
//!   (queue depth + rolling p99) to pick the batch's sample budget, then
//!   enqueues a [`BatchJob`] for the executors.
//! * **Executors** (a small pool) run each job through
//!   [`Uae::try_estimate_cards_with`] — so the whole validation → sample →
//!   retry → baseline → clamp cascade and the quantized kernels apply per
//!   micro-batch — and fill every request's reply slot. A panic in the
//!   batch attempt is caught; only that batch's requests see
//!   [`ServerError::ExecutorPanic`], and the executor thread survives.
//!
//! [`Server::shutdown`] closes the submission channel, lets the
//! dispatcher drain every pending request as final `Drain`-reason
//! batches, runs them to completion and joins all threads — every
//! accepted request is answered before `shutdown` returns.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use uae_core::{
    BackendChoice, Estimate, EstimateError, EstimateSource, FlushReason, ServeEvent, ServeObserver,
};
use uae_query::{CardEstimator, LabeledQuery, Query};

use crate::batcher::{MicroBatcher, Poll};
use crate::registry::{DegradeConfig, Registry, Tenant};
use crate::stats::{batch_bucket, LatencyWindow, ServerStats, ServerStatsCell};

/// Deterministic fault plan for the *front-end* (the model-level
/// [`uae_core::FaultPlan`] lives inside each tenant's `ServeConfig`).
/// Batches are addressed by their flush sequence number, so a plan
/// written against a fixed request sequence reproduces exactly. The
/// default plan is inert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFaultPlan {
    /// Batch sequence numbers whose execution panics *in the executor*
    /// (before reaching the model) — the drill for batch-level panic
    /// isolation.
    pub panic_batches: Vec<u64>,
}

impl ServerFaultPlan {
    /// Whether executing batch `seq` should panic.
    pub fn panics(&self, seq: u64) -> bool {
        self.panic_batches.contains(&seq)
    }

    /// Whether the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.panic_batches.is_empty()
    }
}

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flush a lane as soon as it holds this many requests.
    /// `usize::MAX` disables size flushes (determinism escape hatch).
    pub max_batch: usize,
    /// Flush a lane once its oldest request has waited this long.
    pub max_delay: Duration,
    /// Bounded submission-queue capacity; `submit` beyond it rejects
    /// with [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Batch-executor threads. `1` plus `max_batch = usize::MAX` is the
    /// deterministic replay configuration.
    pub executors: usize,
    /// Override the shared tensor-pool worker count before serving
    /// (`None` leaves the pool's own default / `UAE_POOL_THREADS`
    /// untouched). Executors already parallelise across batches, so
    /// benches typically shrink the intra-op pool here.
    pub kernel_threads: Option<usize>,
    /// Server-default degradation ladder (tenants may override).
    pub degrade: DegradeConfig,
    /// Rolling end-to-end latency window size feeding the ladder's p99
    /// signal and [`Server::p99_ms`].
    pub latency_window: usize,
    /// Front-end fault injection (executor-level panics).
    pub fault: ServerFaultPlan,
    /// Start with the dispatcher paused: submissions queue up (to
    /// `queue_capacity`) but nothing flushes until [`Server::resume`] —
    /// or [`Server::shutdown`], which drains the backlog as
    /// `Drain`-reason batches. Tests use this to build exact batches
    /// without timing races.
    pub start_paused: bool,
    /// How many served queries to keep waiting for a true cardinality
    /// (tenants with an attached [`uae_core::QueryPool`]). When full,
    /// the oldest pending entry is evicted (`labels_dropped`).
    pub label_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            executors: 2,
            kernel_threads: None,
            degrade: DegradeConfig::default(),
            latency_window: 512,
            fault: ServerFaultPlan::default(),
            start_paused: false,
            label_buffer: 4096,
        }
    }
}

impl ServerConfig {
    /// The deterministic replay configuration: one executor, unbounded
    /// batch size, paused dispatcher. Submit a sequence, then
    /// [`Server::shutdown`] — each tenant's requests execute as a single
    /// batch bit-identical to [`Uae::try_estimate_cards`] on the same
    /// queries in submit order.
    pub fn deterministic(queue_capacity: usize) -> Self {
        ServerConfig {
            max_batch: usize::MAX,
            max_delay: Duration::from_secs(3600),
            queue_capacity,
            executors: 1,
            degrade: DegradeConfig::disabled(),
            start_paused: true,
            ..Self::default()
        }
    }
}

/// Why [`Server::submit`] refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No tenant of that name is registered.
    UnknownTenant(String),
    /// The bounded submission queue is full — shed load or retry later.
    Overloaded,
    /// The server is shutting down (or already shut down).
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownTenant(name) => write!(f, "unknown tenant `{name}`"),
            SubmitError::Overloaded => write!(f, "submission queue full (overloaded)"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* request failed to produce an estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The model-level cascade rejected the query (unknown column).
    Estimate(EstimateError),
    /// The executor panicked while running this request's batch; the
    /// panic was isolated to the batch.
    ExecutorPanic,
    /// The request's [`Server::submit_with_deadline`] deadline passed
    /// while it waited in the queue; it was dropped before execution
    /// (the estimate would have arrived too late to be useful). Counted
    /// in [`ServerStats::deadline_exceeded`] — distinct from the
    /// [`SubmitError::Overloaded`] shed, which never enters the queue.
    DeadlineExceeded,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Estimate(e) => write!(f, "estimate error: {e}"),
            ServerError::ExecutorPanic => write!(f, "executor panicked while running the batch"),
            ServerError::DeadlineExceeded => {
                write!(f, "request deadline passed while queued")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<EstimateError> for ServerError {
    fn from(e: EstimateError) -> Self {
        ServerError::Estimate(e)
    }
}

/// Oneshot reply slot: filled exactly once by an executor, awaited by the
/// submitting thread. `std::sync` Mutex + Condvar (the vendored
/// `parking_lot` carries no Condvar).
struct ReplySlot {
    slot: Mutex<Option<Result<Estimate, ServerError>>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot { slot: Mutex::new(None), cv: Condvar::new() }
    }

    fn fill(&self, value: Result<Estimate, ServerError>) {
        let mut slot = self.slot.lock().expect("reply slot poisoned");
        debug_assert!(slot.is_none(), "reply slot filled twice");
        *slot = Some(value);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Estimate, ServerError> {
        let mut slot = self.slot.lock().expect("reply slot poisoned");
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            slot = self.cv.wait(slot).expect("reply slot poisoned");
        }
    }

    fn try_take(&self) -> Option<Result<Estimate, ServerError>> {
        self.slot.lock().expect("reply slot poisoned").take()
    }
}

/// Handle to one in-flight request's eventual reply.
pub struct Ticket {
    id: u64,
    slot: Arc<ReplySlot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish_non_exhaustive()
    }
}

impl Ticket {
    /// The server-wide request id, the key [`Server::resolve_truth`]
    /// accepts once the query's true cardinality becomes known.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the reply arrives. Every accepted request is
    /// answered — [`Server::shutdown`] drains the backlog before
    /// returning, so `wait` cannot hang on a clean shutdown.
    pub fn wait(self) -> Result<Estimate, ServerError> {
        self.slot.wait()
    }

    /// The reply, if it has already arrived (consumes it).
    pub fn try_take(&self) -> Option<Result<Estimate, ServerError>> {
        self.slot.try_take()
    }
}

/// One accepted request travelling through the pipeline.
struct Request {
    /// Server-wide request sequence number (assigned at accept).
    id: u64,
    tenant: Arc<Tenant>,
    query: Query,
    reply: Arc<ReplySlot>,
    submitted: Instant,
    /// Drop-dead time: past it the request is answered
    /// [`ServerError::DeadlineExceeded`] at flush instead of executing.
    deadline: Option<Instant>,
}

/// A flushed micro-batch awaiting an executor.
struct BatchJob {
    /// Batch flush sequence number.
    seq: u64,
    tenant: Arc<Tenant>,
    requests: Vec<Request>,
    /// Degraded per-query sample budget chosen at flush time (`None` =
    /// tenant's configured budget).
    samples_override: Option<usize>,
}

/// Executor work queue: `std::sync` Mutex + Condvar. `pop` keeps
/// returning queued jobs after `close()` until empty, so a shutdown
/// drain executes everything it flushed.
#[derive(Default)]
struct JobQueue {
    state: Mutex<JobState>,
    cv: Condvar,
}

#[derive(Default)]
struct JobState {
    queue: VecDeque<BatchJob>,
    closed: bool,
}

impl JobQueue {
    fn push(&self, job: BatchJob) {
        let mut st = self.state.lock().expect("job queue poisoned");
        st.queue.push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<BatchJob> {
        let mut st = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = st.queue.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("job queue poisoned");
        st.closed = true;
        self.cv.notify_all();
    }
}

/// Dispatcher pause gate (see [`ServerConfig::start_paused`]).
#[derive(Default)]
struct PauseGate {
    paused: Mutex<bool>,
    cv: Condvar,
}

/// Bounded store of served-but-unlabeled queries, keyed by request id,
/// waiting for [`Server::resolve_truth`]. FIFO eviction: truths that
/// never arrive must not pin memory forever.
struct PendingLabels {
    map: HashMap<u64, (Arc<Tenant>, Query)>,
    order: VecDeque<u64>,
    cap: usize,
}

impl PendingLabels {
    fn new(cap: usize) -> Self {
        PendingLabels { map: HashMap::new(), order: VecDeque::new(), cap }
    }

    /// Record one entry; returns how many old entries were evicted.
    fn record(&mut self, id: u64, tenant: Arc<Tenant>, query: Query) -> u64 {
        let mut evicted = 0;
        if self.cap == 0 {
            return 1;
        }
        while self.map.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    if self.map.remove(&old).is_some() {
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        self.map.insert(id, (tenant, query));
        self.order.push_back(id);
        evicted
    }

    fn remove(&mut self, id: u64) -> Option<(Arc<Tenant>, Query)> {
        // `order` is lazily cleaned: stale ids fail the map lookup above.
        self.map.remove(&id)
    }
}

/// Shared state every pipeline thread sees.
struct Shared {
    registry: Arc<Registry>,
    stats: ServerStatsCell,
    latency: LatencyWindow,
    observer: parking_lot::Mutex<Option<Box<dyn ServeObserver>>>,
    jobs: JobQueue,
    gate: PauseGate,
    shutting_down: AtomicBool,
    request_seq: AtomicU64,
    batch_seq: AtomicU64,
    degrade: DegradeConfig,
    fault: ServerFaultPlan,
    /// Registry swap epoch last observed at flush time; a bump resets
    /// the rolling latency window (pre-swap samples describe the old
    /// model).
    seen_swap_epoch: AtomicU64,
    /// Served queries awaiting their true cardinality (only for tenants
    /// with an attached `QueryPool`).
    labels: parking_lot::Mutex<PendingLabels>,
}

impl Shared {
    fn emit(&self, event: ServeEvent) {
        if let Some(obs) = self.observer.lock().as_mut() {
            obs.on_serve_event(&event);
        }
    }
}

/// The concurrent serving front-end. See the module docs for the
/// pipeline shape; construct with [`Server::start`].
pub struct Server {
    shared: Arc<Shared>,
    submit_tx: RwLock<Option<SyncSender<Request>>>,
    dispatcher: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    cfg: ServerConfig,
}

impl Server {
    /// Spawn the dispatcher and executor pool over `registry`.
    pub fn start(registry: Arc<Registry>, cfg: ServerConfig) -> Server {
        if let Some(threads) = cfg.kernel_threads {
            uae_tensor::configure_pool_threads(threads);
        }
        let shared = Arc::new(Shared {
            registry: registry.clone(),
            stats: ServerStatsCell::default(),
            latency: LatencyWindow::new(cfg.latency_window),
            observer: parking_lot::Mutex::new(None),
            jobs: JobQueue::default(),
            gate: PauseGate { paused: Mutex::new(cfg.start_paused), cv: Condvar::new() },
            shutting_down: AtomicBool::new(false),
            request_seq: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
            degrade: cfg.degrade.clone(),
            fault: cfg.fault.clone(),
            seen_swap_epoch: AtomicU64::new(registry.swap_epoch()),
            labels: parking_lot::Mutex::new(PendingLabels::new(cfg.label_buffer)),
        });
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let dispatcher = {
            let shared = shared.clone();
            let max_batch = cfg.max_batch;
            let max_delay = cfg.max_delay;
            std::thread::Builder::new()
                .name("uae-dispatch".into())
                .spawn(move || dispatcher_loop(shared, rx, max_batch, max_delay))
                .expect("spawn dispatcher")
        };
        let executors = (0..cfg.executors.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("uae-exec-{i}"))
                    .spawn(move || executor_loop(shared))
                    .expect("spawn executor")
            })
            .collect();
        Server {
            shared,
            submit_tx: RwLock::new(Some(tx)),
            dispatcher: Some(dispatcher),
            executors,
            cfg,
        }
    }

    /// Cold-start the server from a durable state directory: run
    /// [`crate::recover::recover_registry`] over `dir` — replaying the
    /// promotion journal against the tenant manifest, quarantining
    /// anything corrupt, republishing the last provably-good version per
    /// tenant — then start serving on the recovered fleet.
    ///
    /// `builder` produces each tenant's base (seed) model, exactly as at
    /// first registration; see [`crate::recover::recover_registry`] for
    /// the full contract. The returned [`RecoveryReport`] carries the
    /// per-tenant verdicts and the recovery-time (unavailability) window.
    pub fn recover(
        dir: &std::path::Path,
        cfg: ServerConfig,
        builder: &mut dyn FnMut(&str) -> Option<uae_core::Uae>,
        observer: Option<&mut dyn uae_core::RecoveryObserver>,
    ) -> Result<(Server, crate::recover::RecoveryReport), uae_core::PersistError> {
        let (registry, report) = crate::recover::recover_registry(dir, builder, None, observer)?;
        Ok((Server::start(registry, cfg), report))
    }

    /// The tenant registry this server serves from.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Attach a serve observer for front-end events
    /// ([`ServeEvent::BatchFlushed`], [`ServeEvent::RequestServed`]).
    /// Model-level events are observed per tenant via
    /// [`Uae::set_serve_observer`].
    pub fn set_observer(&self, observer: Box<dyn ServeObserver>) {
        *self.shared.observer.lock() = Some(observer);
    }

    /// Submit one query for `tenant`. Non-blocking: either the request
    /// is accepted (a [`Ticket`] for the eventual reply) or it is
    /// rejected right now with a typed reason.
    pub fn submit(&self, tenant: &str, query: Query) -> Result<Ticket, SubmitError> {
        self.submit_inner(tenant, query, None)
    }

    /// [`Server::submit`] with a drop-dead budget: if the request is
    /// still queued when `deadline` (measured from now) has elapsed, the
    /// dispatcher drops it at flush time and the ticket resolves to
    /// [`ServerError::DeadlineExceeded`] instead of waiting on a batch
    /// whose answer would arrive too late. Requests already handed to an
    /// executor run to completion — the deadline bounds *queueing*, not
    /// execution.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        query: Query,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(tenant, query, Some(Instant::now() + deadline))
    }

    fn submit_inner(
        &self,
        tenant: &str,
        query: Query,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        let Some(tenant) = self.shared.registry.get(tenant) else {
            self.shared.stats.rejected_unknown_tenant.fetch_add(1, Ordering::SeqCst);
            return Err(SubmitError::UnknownTenant(tenant.to_owned()));
        };
        let tx_guard = self.submit_tx.read();
        let Some(tx) = tx_guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let reply = Arc::new(ReplySlot::new());
        let id = self.shared.request_seq.fetch_add(1, Ordering::SeqCst);
        let request = Request {
            id,
            tenant,
            query,
            reply: reply.clone(),
            submitted: Instant::now(),
            deadline,
        };
        match tx.try_send(request) {
            Ok(()) => {
                self.shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
                self.shared.stats.enter();
                Ok(Ticket { id, slot: reply })
            }
            Err(TrySendError::Full(_)) => {
                self.shared.stats.rejected_overloaded.fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Convenience: submit and block for the reply.
    pub fn estimate(&self, tenant: &str, query: Query) -> Result<Estimate, ServeCallError> {
        let ticket = self.submit(tenant, query).map_err(ServeCallError::Submit)?;
        ticket.wait().map_err(ServeCallError::Serve)
    }

    /// Deliver the true cardinality for an earlier request (identified
    /// by [`Ticket::id`]), closing the online-learning loop: the label
    /// joins the tenant's attached [`uae_core::QueryPool`] — the same
    /// pool an `OnlineLearner` trains from — as a [`LabeledQuery`].
    /// Returns `false` if the request was never recorded (no pool
    /// attached when it was served), already resolved, or evicted.
    pub fn resolve_truth(&self, request_id: u64, true_card: u64) -> bool {
        let entry = self.shared.labels.lock().remove(request_id);
        let Some((tenant, query)) = entry else {
            return false;
        };
        let Some(pool) = tenant.pool() else {
            return false;
        };
        let rows = tenant.model().num_rows();
        let selectivity = if rows > 0.0 { (true_card as f64 / rows).clamp(0.0, 1.0) } else { 0.0 };
        pool.push(LabeledQuery { query, cardinality: true_card, selectivity });
        self.shared.stats.labels_resolved.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// Served queries currently waiting for [`Server::resolve_truth`].
    pub fn pending_labels(&self) -> usize {
        self.shared.labels.lock().map.len()
    }

    /// Pause the dispatcher: accepted requests queue up (to capacity)
    /// but nothing flushes until [`Server::resume`].
    pub fn pause(&self) {
        *self.shared.gate.paused.lock().expect("pause gate poisoned") = true;
    }

    /// Resume a paused dispatcher.
    pub fn resume(&self) {
        *self.shared.gate.paused.lock().expect("pause gate poisoned") = false;
        self.shared.gate.cv.notify_all();
    }

    /// Snapshot of the front-end counters, including rolling-window
    /// latency quantiles.
    pub fn stats(&self) -> ServerStats {
        let mut s = self.shared.stats.snapshot();
        s.p50_ms = self.shared.latency.quantile(0.5);
        s.p99_ms = self.shared.latency.quantile(0.99);
        s
    }

    /// The `q`-quantile of the rolling end-to-end latency window (ms).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.shared.latency.quantile(q)
    }

    /// Observations currently in the rolling latency window. The window
    /// resets on a model hot-swap (at the first post-swap flush), so
    /// this also witnesses swap-time hygiene in tests.
    pub fn latency_samples(&self) -> usize {
        self.shared.latency.len()
    }

    /// Current in-flight requests (accepted, not yet replied).
    pub fn queue_depth(&self) -> usize {
        self.shared.stats.depth()
    }

    /// Rolling-window p99 end-to-end latency (ms); `0.0` before any
    /// completion.
    pub fn p99_ms(&self) -> f64 {
        self.shared.latency.quantile(0.99)
    }

    /// Close the front door, drain every pending request as final
    /// `Drain` batches, run them to completion, join all threads and
    /// return the final counters. Every accepted request has been
    /// answered when this returns.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner();
        let mut s = self.shared.stats.snapshot();
        s.p50_ms = self.shared.latency.quantile(0.5);
        s.p99_ms = self.shared.latency.quantile(0.99);
        s
    }

    fn shutdown_inner(&mut self) {
        // Drop the sender so the dispatcher sees Disconnected once the
        // channel empties.
        *self.submit_tx.write() = None;
        // Wake a paused dispatcher into the drain path.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.gate.cv.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The dispatcher closed the job queue on exit; executors finish
        // the remaining jobs and stop.
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.dispatcher.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Error from the blocking [`Server::estimate`] convenience call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeCallError {
    /// Rejected at the front door.
    Submit(SubmitError),
    /// Accepted but failed downstream.
    Serve(ServerError),
}

impl std::fmt::Display for ServeCallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeCallError::Submit(e) => write!(f, "{e}"),
            ServeCallError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeCallError {}

fn dispatcher_loop(
    shared: Arc<Shared>,
    rx: Receiver<Request>,
    max_batch: usize,
    max_delay: Duration,
) {
    let epoch = Instant::now();
    let now_ns = |epoch: Instant| epoch.elapsed().as_nanos() as u64;
    let mut batcher: MicroBatcher<Request> =
        MicroBatcher::new(shared.registry.len(), max_batch, max_delay.as_nanos() as u64);
    loop {
        // Pause gate: while paused, requests pile up in the bounded
        // channel (that is the point — backpressure becomes visible).
        {
            let mut paused = shared.gate.paused.lock().expect("pause gate poisoned");
            while *paused && !shared.shutting_down.load(Ordering::SeqCst) {
                paused = shared.gate.cv.wait(paused).expect("pause gate poisoned");
            }
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            // Pull whatever is still buffered in the channel, then fall
            // through to the drain below.
            while let Ok(req) = rx.try_recv() {
                enqueue(&shared, &mut batcher, req, now_ns(epoch));
            }
            break;
        }
        match batcher.poll(now_ns(epoch)) {
            Poll::Flush { lane, reason } => {
                let requests = batcher.take(lane);
                flush(&shared, lane, requests, reason, now_ns(epoch));
            }
            Poll::WaitNs(ns) => match rx.recv_timeout(Duration::from_nanos(ns)) {
                Ok(req) => enqueue(&shared, &mut batcher, req, now_ns(epoch)),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            },
            Poll::Idle => match rx.recv() {
                Ok(req) => enqueue(&shared, &mut batcher, req, now_ns(epoch)),
                Err(_) => break,
            },
        }
    }
    // Shutdown drain: every pending lane flushes as one final batch.
    for (lane, requests) in batcher.drain_all() {
        flush(&shared, lane, requests, FlushReason::Drain, now_ns(epoch));
    }
    shared.jobs.close();
}

/// Push one request into its tenant's lane, flushing on size.
fn enqueue(shared: &Arc<Shared>, batcher: &mut MicroBatcher<Request>, req: Request, now_ns: u64) {
    let lane = req.tenant.lane();
    if let Some(reason) = batcher.push(lane, req, now_ns) {
        let requests = batcher.take(lane);
        flush(shared, lane, requests, reason, now_ns);
    }
}

/// Turn a flushed lane into a [`BatchJob`]: pick the degraded budget from
/// the current load signals, account the flush, hand it to the executors.
fn flush(
    shared: &Arc<Shared>,
    lane: usize,
    mut requests: Vec<Request>,
    reason: FlushReason,
    now_ns: u64,
) {
    if requests.is_empty() {
        return;
    }
    // Expired-in-queue requests never reach an executor: answering them
    // would burn batch budget on estimates the caller has already given
    // up on. Dropped here (the single point every request passes through
    // on its way to a batch), counted separately from the `Overloaded`
    // shed — these were *accepted* and then timed out.
    let now = Instant::now();
    let expired: Vec<Request> = {
        let (expired, live): (Vec<Request>, Vec<Request>) =
            requests.drain(..).partition(|r| r.deadline.is_some_and(|d| now > d));
        requests = live;
        expired
    };
    if !expired.is_empty() {
        shared.stats.deadline_exceeded.fetch_add(expired.len() as u64, Ordering::SeqCst);
        shared.stats.exit(expired.len());
        for req in expired {
            req.reply.fill(Err(ServerError::DeadlineExceeded));
        }
    }
    if requests.is_empty() {
        return;
    }
    let tenant = shared.registry.by_lane(lane).unwrap_or_else(|| requests[0].tenant.clone());
    // A model publication since the last flush invalidates the rolling
    // latency window: its samples describe the replaced model and would
    // keep feeding the ladder's p99 signal against the new one.
    let epoch = shared.registry.swap_epoch();
    if shared.seen_swap_epoch.swap(epoch, Ordering::SeqCst) != epoch {
        shared.latency.reset();
    }
    let queue_depth = shared.stats.depth();
    let p99_ms = shared.latency.quantile(0.99);
    let configured = tenant.model().estimate_samples();
    let samples_override =
        tenant.degrade_budget(&shared.degrade, configured, queue_depth, p99_ms, now_ns);
    let seq = shared.batch_seq.fetch_add(1, Ordering::SeqCst);
    let stats = &shared.stats;
    stats.batches.fetch_add(1, Ordering::SeqCst);
    match reason {
        FlushReason::Size => stats.flush_size.fetch_add(1, Ordering::SeqCst),
        FlushReason::Deadline => stats.flush_deadline.fetch_add(1, Ordering::SeqCst),
        FlushReason::Drain => stats.flush_drain.fetch_add(1, Ordering::SeqCst),
    };
    stats.batch_hist[batch_bucket(requests.len())].fetch_add(1, Ordering::SeqCst);
    shared.emit(ServeEvent::BatchFlushed {
        batch: seq,
        tenant: tenant.name().to_owned(),
        size: requests.len(),
        reason,
        queue_depth,
    });
    shared.jobs.push(BatchJob { seq, tenant, requests, samples_override });
}

fn executor_loop(shared: Arc<Shared>) {
    while let Some(job) = shared.jobs.pop() {
        run_batch(&shared, job);
    }
}

/// Execute one micro-batch end to end: route (when the tenant holds a
/// fleet), model call (panic-isolated), replies, latency accounting,
/// telemetry.
///
/// Without a router the batch runs exactly as before — one
/// `try_estimate_cards_with` call over every query. With one, each
/// query's [`RouteDecision`](uae_core::RouteDecision) partitions the
/// batch: the primary subset still goes through the model's full
/// cascade (in batch order, so the sampler's RNG stream matches a
/// router-replay of the same workload), while routed queries are
/// answered by the chosen baseline backend and tagged
/// [`EstimateSource::Routed`].
/// Per-request batch outcome: the estimate (or error) plus, when a
/// router served it, the `(backend index, shape class)` it was routed to.
type BatchOutcome = (Result<Estimate, ServerError>, Option<(usize, u16)>);

fn run_batch(shared: &Arc<Shared>, job: BatchJob) {
    let n = job.requests.len();
    let queries: Vec<Query> = job.requests.iter().map(|r| r.query.clone()).collect();
    let model = job.tenant.model();
    let router = job.tenant.router();
    let exec_start = Instant::now();
    // Each slot: the estimate plus, for routed queries, the backend
    // index and shape class (for the `Routed` telemetry event).
    type Slot = (Result<Estimate, EstimateError>, Option<(usize, u16)>);
    let attempt = catch_unwind(AssertUnwindSafe(|| -> Vec<Slot> {
        if shared.fault.panics(job.seq) {
            panic!("uae-server: fault-plan panic (batch {})", job.seq);
        }
        match router.as_deref() {
            None => model
                .try_estimate_cards_with(&queries, job.samples_override)
                .into_iter()
                .map(|r| (r, None))
                .collect(),
            Some(router) => {
                let decisions = router.decide_batch(&queries);
                let primary_queries: Vec<Query> = decisions
                    .iter()
                    .zip(&queries)
                    .filter(|(d, _)| d.choice == BackendChoice::Primary)
                    .map(|(_, q)| q.clone())
                    .collect();
                let mut primary = model
                    .try_estimate_cards_with(&primary_queries, job.samples_override)
                    .into_iter();
                decisions
                    .iter()
                    .enumerate()
                    .map(|(i, d)| match d.choice {
                        BackendChoice::Primary => {
                            (primary.next().expect("one result per primary query"), None)
                        }
                        BackendChoice::Backend(b) => {
                            (router.estimate_routed(b, &queries[i]), Some((b, d.class)))
                        }
                    })
                    .collect()
            }
        }
    }));
    let execute_ms = exec_start.elapsed().as_secs_f64() * 1e3;
    let stats = &shared.stats;
    let results: Vec<BatchOutcome> = match attempt {
        Ok(results) => {
            results.into_iter().map(|(r, routed)| (r.map_err(ServerError::from), routed)).collect()
        }
        Err(_) => {
            stats.executor_panics.fetch_add(1, Ordering::SeqCst);
            (0..n).map(|_| (Err(ServerError::ExecutorPanic), None)).collect()
        }
    };
    // Record served queries for later truth resolution *before* any
    // reply is filled: once `Ticket::wait` returns, the caller may
    // immediately call `resolve_truth` with the ticket id.
    if job.tenant.pool().is_some() {
        let pending: Vec<(u64, Query)> = job
            .requests
            .iter()
            .zip(&results)
            .filter(|(_, (r, _))| r.is_ok())
            .map(|(req, _)| (req.id, req.query.clone()))
            .collect();
        if !pending.is_empty() {
            let recorded = pending.len() as u64;
            let mut dropped = 0u64;
            let mut labels = shared.labels.lock();
            for (id, query) in pending {
                dropped += labels.record(id, job.tenant.clone(), query);
            }
            drop(labels);
            stats.labels_recorded.fetch_add(recorded, Ordering::SeqCst);
            if dropped > 0 {
                stats.labels_dropped.fetch_add(dropped, Ordering::SeqCst);
            }
        }
    }
    let mut queue_ns_total = 0u64;
    let mut exec_ns_total = 0u64;
    for (req, (result, routed)) in job.requests.into_iter().zip(results) {
        match &result {
            Ok(est) => {
                stats.completed.fetch_add(1, Ordering::SeqCst);
                if est.source == EstimateSource::ModelDegraded {
                    stats.degraded_requests.fetch_add(1, Ordering::SeqCst);
                }
                if let Some((b, class)) = routed {
                    stats.routed_requests.fetch_add(1, Ordering::SeqCst);
                    if let Some(router) = router.as_deref() {
                        let backend = &router.backends()[b];
                        shared.emit(ServeEvent::Routed {
                            index: req.id,
                            backend: backend.name().to_owned(),
                            family: backend.family().label(),
                            class,
                        });
                    }
                }
            }
            Err(ServerError::Estimate(_)) => {
                stats.query_errors.fetch_add(1, Ordering::SeqCst);
            }
            Err(ServerError::ExecutorPanic) => {
                stats.failed.fetch_add(1, Ordering::SeqCst);
            }
            // Deadline drops happen at flush and never reach a batch.
            Err(ServerError::DeadlineExceeded) => unreachable!("dropped before execution"),
        }
        let queue_ms = exec_start.duration_since(req.submitted).as_secs_f64() * 1e3;
        let total_ms = req.submitted.elapsed().as_secs_f64() * 1e3;
        shared.latency.record(total_ms);
        queue_ns_total += (queue_ms * 1e6) as u64;
        exec_ns_total += (execute_ms * 1e6) as u64;
        shared.emit(ServeEvent::RequestServed {
            index: req.id,
            tenant: job.tenant.name().to_owned(),
            queue_ms,
            execute_ms,
        });
        req.reply.fill(result);
    }
    stats.queue_wait_ns.fetch_add(queue_ns_total, Ordering::SeqCst);
    stats.execute_ns.fetch_add(exec_ns_total, Ordering::SeqCst);
    stats.exit(n);
}
