//! Server-side counters: submission/rejection/completion tallies, the
//! flush-reason split, a batch-size histogram, queue-depth gauges and a
//! rolling end-to-end latency window for p50/p99 (which also feeds the
//! degradation ladder's latency signal).
//!
//! Everything on the submit/execute hot paths is an atomic; the latency
//! ring takes a short mutex per completed batch. [`ServerStatsCell`] is the
//! live cell shared across threads, [`ServerStats`] the plain snapshot
//! handed to callers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Number of log2 batch-size buckets: `1, 2, 3–4, 5–8, …, 257–512, >512`.
pub const BATCH_HIST_BUCKETS: usize = 11;

/// Histogram bucket for a batch of `size` requests.
pub fn batch_bucket(size: usize) -> usize {
    let size = size.max(1);
    // ceil(log2(size)), saturated into the top bucket.
    let ceil_log2 = (usize::BITS - (size - 1).leading_zeros()) as usize;
    ceil_log2.min(BATCH_HIST_BUCKETS - 1)
}

/// Human label for a histogram bucket (for reports).
pub fn batch_bucket_label(bucket: usize) -> String {
    match bucket {
        0 => "1".to_owned(),
        b if b + 1 == BATCH_HIST_BUCKETS => format!(">{}", 1usize << (b - 1)),
        b => format!("{}-{}", (1usize << (b - 1)) + 1, 1usize << b),
    }
}

/// Fixed-size ring of recent end-to-end latencies (milliseconds).
pub struct LatencyWindow {
    ring: Mutex<RingState>,
}

struct RingState {
    buf: Vec<f64>,
    cursor: usize,
    filled: bool,
}

impl LatencyWindow {
    /// A window remembering the last `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        LatencyWindow {
            ring: Mutex::new(RingState {
                buf: Vec::with_capacity(capacity.max(1)),
                cursor: 0,
                filled: false,
            }),
        }
    }

    /// Record one observation.
    pub fn record(&self, ms: f64) {
        let mut st = self.ring.lock();
        if st.buf.len() < st.buf.capacity() {
            st.buf.push(ms);
        } else {
            let c = st.cursor;
            st.buf[c] = ms;
            st.cursor = (c + 1) % st.buf.capacity();
            st.filled = true;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the window, or `0.0` when
    /// empty. Nearest-rank on a sorted copy — the window is small by
    /// construction.
    pub fn quantile(&self, q: f64) -> f64 {
        let mut xs = self.ring.lock().buf.clone();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((xs.len() as f64 * q).ceil() as usize).clamp(1, xs.len());
        xs[rank - 1]
    }

    /// Drop every observation (the window restarts empty). Called on a
    /// model hot-swap: pre-swap latencies describe the replaced model
    /// and must not keep steering the degradation ladder against the
    /// new one.
    pub fn reset(&self) {
        let mut st = self.ring.lock();
        st.buf.clear();
        st.cursor = 0;
        st.filled = false;
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Live, thread-shared server counters.
#[derive(Default)]
pub struct ServerStatsCell {
    pub(crate) submitted: AtomicU64,
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected_overloaded: AtomicU64,
    pub(crate) rejected_unknown_tenant: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) query_errors: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) degraded_requests: AtomicU64,
    pub(crate) routed_requests: AtomicU64,
    pub(crate) labels_recorded: AtomicU64,
    pub(crate) labels_resolved: AtomicU64,
    pub(crate) labels_dropped: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) flush_size: AtomicU64,
    pub(crate) flush_deadline: AtomicU64,
    pub(crate) flush_drain: AtomicU64,
    pub(crate) executor_panics: AtomicU64,
    pub(crate) batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) max_queue_depth: AtomicUsize,
    pub(crate) queue_wait_ns: AtomicU64,
    pub(crate) execute_ns: AtomicU64,
}

impl ServerStatsCell {
    /// Raise the in-flight gauge, keeping the high-water mark.
    pub(crate) fn enter(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::SeqCst);
    }

    /// Lower the in-flight gauge by `n` replies.
    pub(crate) fn exit(&self, n: usize) {
        self.queue_depth.fetch_sub(n, Ordering::SeqCst);
    }

    /// Current in-flight requests (accepted, not yet replied).
    pub fn depth(&self) -> usize {
        self.queue_depth.load(Ordering::SeqCst)
    }

    /// Plain snapshot of every counter.
    pub fn snapshot(&self) -> ServerStats {
        let ld = |a: &AtomicU64| a.load(Ordering::SeqCst);
        let mut batch_hist = [0u64; BATCH_HIST_BUCKETS];
        for (dst, src) in batch_hist.iter_mut().zip(&self.batch_hist) {
            *dst = ld(src);
        }
        ServerStats {
            submitted: ld(&self.submitted),
            accepted: ld(&self.accepted),
            rejected_overloaded: ld(&self.rejected_overloaded),
            rejected_unknown_tenant: ld(&self.rejected_unknown_tenant),
            deadline_exceeded: ld(&self.deadline_exceeded),
            completed: ld(&self.completed),
            query_errors: ld(&self.query_errors),
            failed: ld(&self.failed),
            degraded_requests: ld(&self.degraded_requests),
            routed_requests: ld(&self.routed_requests),
            labels_recorded: ld(&self.labels_recorded),
            labels_resolved: ld(&self.labels_resolved),
            labels_dropped: ld(&self.labels_dropped),
            batches: ld(&self.batches),
            flush_size: ld(&self.flush_size),
            flush_deadline: ld(&self.flush_deadline),
            flush_drain: ld(&self.flush_drain),
            executor_panics: ld(&self.executor_panics),
            batch_hist,
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            max_queue_depth: self.max_queue_depth.load(Ordering::SeqCst),
            queue_wait_ms_total: ld(&self.queue_wait_ns) as f64 / 1e6,
            execute_ms_total: ld(&self.execute_ns) as f64 / 1e6,
            p50_ms: 0.0,
            p99_ms: 0.0,
        }
    }
}

/// Point-in-time copy of the server counters (see [`ServerStatsCell`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Submissions attempted (accepted + rejected).
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub accepted: u64,
    /// Submissions bounced with `Overloaded` (queue full).
    pub rejected_overloaded: u64,
    /// Submissions bounced with `UnknownTenant`.
    pub rejected_unknown_tenant: u64,
    /// Accepted requests dropped at flush because their
    /// `submit_with_deadline` budget expired while they queued. Distinct
    /// from `rejected_overloaded`: these entered the queue and timed
    /// out; the overload shed never entered at all.
    pub deadline_exceeded: u64,
    /// Requests answered with an estimate.
    pub completed: u64,
    /// Requests answered with a typed per-query `EstimateError`.
    pub query_errors: u64,
    /// Requests answered with a server-side error (executor panic,
    /// shutdown before execution).
    pub failed: u64,
    /// Requests served under a degraded (shrunken) sample budget.
    pub degraded_requests: u64,
    /// Requests a tenant's fleet router sent to a baseline backend
    /// instead of the primary model (results carry
    /// `EstimateSource::Routed`). Deliberate choices, not degradations —
    /// never double-counted in `failed` or the model's fallback tallies.
    pub routed_requests: u64,
    /// Served queries recorded as awaiting a true cardinality (tenants
    /// with an attached label pool).
    pub labels_recorded: u64,
    /// Recorded queries whose true cardinality arrived and was joined
    /// into the tenant's shared `QueryPool`.
    pub labels_resolved: u64,
    /// Recorded queries evicted before their truth arrived (pending-label
    /// buffer full — oldest first).
    pub labels_dropped: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Batches closed because they reached `max_batch`.
    pub flush_size: u64,
    /// Batches closed because the oldest request reached `max_delay`.
    pub flush_deadline: u64,
    /// Batches closed by shutdown drain.
    pub flush_drain: u64,
    /// Batch executions that panicked (isolated; one per batch).
    pub executor_panics: u64,
    /// Log2 batch-size histogram (`1, 2, 3–4, …, >512`; see
    /// [`batch_bucket_label`]).
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// In-flight requests at snapshot time.
    pub queue_depth: usize,
    /// High-water mark of in-flight requests.
    pub max_queue_depth: usize,
    /// Total milliseconds requests spent queued / in forming batches.
    pub queue_wait_ms_total: f64,
    /// Total milliseconds executors spent on batches (per request).
    pub execute_ms_total: f64,
    /// Rolling-window p50 end-to-end latency (ms). Filled by
    /// `Server::stats`/`Server::shutdown` (the raw cell holds no window);
    /// `0.0` before any completion.
    pub p50_ms: f64,
    /// Rolling-window p99 end-to-end latency (ms); same provenance.
    pub p99_ms: f64,
}

impl ServerStats {
    /// Mean executed batch size.
    pub fn mean_batch_size(&self) -> f64 {
        let served = (self.completed + self.query_errors + self.failed) as f64;
        if self.batches == 0 {
            0.0
        } else {
            served / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_buckets_cover_log2_ranges() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(512), 9);
        assert_eq!(batch_bucket(513), 10);
        assert_eq!(batch_bucket(1 << 20), 10, "huge batches saturate the top bucket");
        assert_eq!(batch_bucket_label(0), "1");
        assert_eq!(batch_bucket_label(2), "3-4");
        assert_eq!(batch_bucket_label(10), ">512");
    }

    #[test]
    fn latency_window_quantiles_and_wraparound() {
        let w = LatencyWindow::new(4);
        assert_eq!(w.quantile(0.99), 0.0, "empty window reports 0");
        for ms in [1.0, 2.0, 3.0, 4.0] {
            w.record(ms);
        }
        assert_eq!(w.quantile(0.5), 2.0);
        assert_eq!(w.quantile(1.0), 4.0);
        // Overwrite the oldest: window becomes {5, 2, 3, 4}.
        w.record(5.0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.quantile(1.0), 5.0);
        assert_eq!(w.quantile(0.25), 2.0);
    }

    #[test]
    fn latency_window_reset_restarts_empty_with_full_capacity() {
        let w = LatencyWindow::new(3);
        for ms in [1.0, 2.0, 3.0, 4.0] {
            w.record(ms);
        }
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.99), 0.0);
        // The ring refills from scratch after the reset.
        for ms in [7.0, 8.0, 9.0] {
            w.record(ms);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.quantile(0.5), 8.0);
    }

    #[test]
    fn depth_gauge_tracks_high_water_mark() {
        let c = ServerStatsCell::default();
        c.enter();
        c.enter();
        c.enter();
        c.exit(2);
        assert_eq!(c.depth(), 1);
        let snap = c.snapshot();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.max_queue_depth, 3);
    }
}
