//! End-to-end tests for the model fleet in the serving front-end:
//! routed batches are tagged (never counted as fallbacks), an
//! all-primary router is bit-identical to serving without one, and the
//! truth-feedback hook closes the online-learning loop through the
//! same `QueryPool` an `OnlineLearner` trains from.

use std::collections::HashSet;
use std::sync::Arc;

use uae_core::{
    EstimateSource, QueryPool, ResMadeConfig, RouteConfig, Router, ServeEvent, ServeMemoryObserver,
    TrainConfig, Uae, UaeConfig,
};
use uae_data::census_like;
use uae_estimators::HistogramEstimator;
use uae_query::{generate_workload, CardEstimator, LabeledQuery, WorkloadSpec};
use uae_server::{DegradeConfig, Registry, Server, ServerConfig};

fn quick_uae(rows: usize, seed: u64) -> Uae {
    let t = census_like(rows, seed);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(1);
    uae
}

fn quick_workload(rows: usize, seed: u64, n: usize, qseed: u64) -> Vec<LabeledQuery> {
    let t = census_like(rows, seed);
    generate_workload(&t, &WorkloadSpec::random(n, qseed), &HashSet::new())
}

/// A router whose threshold policy fires for *every* sampled query on
/// this table (the table counts as "wide" from one column up and any
/// correlation below 2.0 counts as independent).
fn route_everything(rows: usize, seed: u64) -> Router {
    let t = census_like(rows, seed);
    let backend: Arc<dyn CardEstimator> = Arc::new(HistogramEstimator::new(&t, 16));
    Router::threshold(
        &t,
        vec![backend],
        RouteConfig { wide_table: 1, high_corr: 2.0, ..RouteConfig::default() },
    )
}

/// A router whose threshold never fires: every decision is `Primary`.
fn route_nothing(rows: usize, seed: u64) -> Router {
    let t = census_like(rows, seed);
    let backend: Arc<dyn CardEstimator> = Arc::new(HistogramEstimator::new(&t, 16));
    Router::threshold(
        &t,
        vec![backend],
        RouteConfig { wide_table: usize::MAX, ..RouteConfig::default() },
    )
}

/// Routed replies carry [`EstimateSource::Routed`], count in
/// `routed_requests`, emit tagged `Routed` telemetry — and the primary
/// model is never consulted, so its fallback counters stay at zero
/// (routing is a choice, not a degradation).
#[test]
fn routed_batch_tags_backend_and_skips_primary() {
    let rows = 600;
    let uae = quick_uae(rows, 19);
    let workload = quick_workload(rows, 19, 20, 77);

    let registry = Arc::new(Registry::new());
    let tenant = registry.register("census", uae);
    registry.set_router("census", Some(Arc::new(route_everything(rows, 19)))).expect("tenant");

    let server = Server::start(registry, ServerConfig::deterministic(64));
    let (obs, events) = ServeMemoryObserver::new();
    server.set_observer(Box::new(obs));

    let tickets: Vec<_> = workload
        .iter()
        .map(|lq| server.submit("census", lq.query.clone()).expect("capacity"))
        .collect();
    let stats = server.shutdown();

    let mut routed = 0u64;
    for t in tickets {
        let est = t.wait().expect("fleet serves every valid query");
        match est.source {
            EstimateSource::Routed(_) => {
                routed += 1;
                assert!(est.selectivity.is_finite() && est.selectivity >= 0.0);
            }
            // Empty/trivial regions are answered exactly by validation,
            // before any backend runs.
            EstimateSource::Validation => {}
            other => panic!("unexpected source {other:?} with an all-route policy"),
        }
    }
    assert!(routed > 0, "the workload must exercise the routed path");
    assert_eq!(stats.routed_requests, routed);
    assert_eq!(stats.completed, workload.len() as u64);

    // The primary model never served: no fallbacks, no degradations —
    // routed answers are not failures of the cascade.
    let model_stats = tenant.model().serve_stats();
    assert_eq!(model_stats.served, 0, "primary must be bypassed entirely");
    assert_eq!(model_stats.fallbacks, 0, "routing must not count as fallback");

    let events = events.lock().expect("event log");
    let tagged: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ServeEvent::Routed { backend, family, .. } => Some((backend.clone(), *family)),
            _ => None,
        })
        .collect();
    assert_eq!(tagged.len() as u64, routed, "one Routed event per routed reply");
    for (backend, family) in tagged {
        assert_eq!(backend, "Histogram");
        assert_eq!(family, "histogram");
    }
}

/// A fleet whose every decision is `Primary` is invisible: replies are
/// bit-identical to the same server without a router (same RNG stream,
/// same cascade), and no routed counters move.
#[test]
fn all_primary_fleet_is_bit_identical_to_no_fleet() {
    let rows = 500;
    let uae = quick_uae(rows, 23);
    let workload = quick_workload(rows, 23, 16, 81);
    let queries: Vec<_> = workload.iter().map(|lq| lq.query.clone()).collect();

    let serve = |router: Option<Router>| {
        let registry = Arc::new(Registry::new());
        registry.register("census", uae.clone());
        if let Some(r) = router {
            registry.set_router("census", Some(Arc::new(r))).expect("tenant");
        }
        let server = Server::start(registry, ServerConfig::deterministic(64));
        let tickets: Vec<_> =
            queries.iter().map(|q| server.submit("census", q.clone()).expect("capacity")).collect();
        let stats = server.shutdown();
        (tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>(), stats)
    };

    let (plain, plain_stats) = serve(None);
    let (fleeted, fleet_stats) = serve(Some(route_nothing(rows, 23)));

    for (a, b) in plain.iter().zip(&fleeted) {
        assert_eq!(a, b, "an all-primary fleet must not perturb replies");
    }
    assert_eq!(plain_stats.routed_requests, 0);
    assert_eq!(fleet_stats.routed_requests, 0, "no decision routed, no routed count");
}

/// Satellite 3 — the truth-feedback hook. Served queries are recorded
/// against their ticket id; when the true cardinality arrives,
/// [`Server::resolve_truth`] joins the label into the tenant's attached
/// [`QueryPool`] — the exact pool an `OnlineLearner` would train from.
#[test]
fn resolve_truth_feeds_attached_pool() {
    let rows = 500;
    let uae = quick_uae(rows, 29);
    let workload = quick_workload(rows, 29, 10, 91);

    let registry = Arc::new(Registry::new());
    registry.register("census", uae);
    let pool = Arc::new(QueryPool::new(64));
    registry.attach_pool("census", Some(pool.clone())).expect("tenant");
    let tenant = registry.get("census").expect("tenant");

    let server = Server::start(
        registry,
        ServerConfig { degrade: DegradeConfig::disabled(), ..ServerConfig::default() },
    );
    let tickets: Vec<_> = workload
        .iter()
        .map(|lq| server.submit("census", lq.query.clone()).expect("capacity"))
        .collect();
    let ids: Vec<u64> = tickets.iter().map(|t| t.id()).collect();
    // Labels are recorded before replies fill, so once every ticket has
    // answered, every served query is resolvable.
    for t in tickets {
        t.wait().expect("workload queries serve");
    }

    assert_eq!(server.pending_labels(), workload.len(), "every served query awaits its truth");

    // Truths arrive later — resolve half of them.
    let resolved: Vec<_> = ids.iter().zip(&workload).take(5).collect();
    for (&id, lq) in &resolved {
        assert!(server.resolve_truth(id, lq.cardinality), "recorded id must resolve");
    }
    assert!(!server.resolve_truth(ids[0], workload[0].cardinality), "double-resolve is refused");
    assert!(!server.resolve_truth(u64::MAX, 1), "unknown id is refused");

    assert_eq!(pool.len(), 5, "resolved labels land in the shared pool");
    assert_eq!(server.pending_labels(), workload.len() - 5);

    let stats = server.shutdown();
    assert_eq!(stats.labels_recorded, workload.len() as u64);
    assert_eq!(stats.labels_resolved, 5);
    assert_eq!(stats.labels_dropped, 0);
    // The pool's owner (the tenant) sees the same object the hook fed.
    assert!(Arc::ptr_eq(&tenant.pool().expect("attached"), &pool));
}

/// The pending-label buffer is bounded: past capacity the oldest entry
/// is evicted (`labels_dropped`) and can no longer be resolved.
#[test]
fn pending_labels_evict_oldest_past_capacity() {
    let rows = 400;
    let uae = quick_uae(rows, 31);
    let workload = quick_workload(rows, 31, 6, 97);

    let registry = Arc::new(Registry::new());
    registry.register("census", uae);
    registry.attach_pool("census", Some(Arc::new(QueryPool::new(64)))).expect("tenant");

    let server = Server::start(
        registry,
        ServerConfig {
            label_buffer: 2,
            // One executor: batches (and so label recording) happen in
            // submission order, making "oldest" deterministic.
            executors: 1,
            degrade: DegradeConfig::disabled(),
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = workload
        .iter()
        .map(|lq| server.submit("census", lq.query.clone()).expect("capacity"))
        .collect();
    let ids: Vec<u64> = tickets.iter().map(|t| t.id()).collect();
    for t in tickets {
        t.wait().expect("workload queries serve");
    }

    assert_eq!(server.pending_labels(), 2, "buffer holds at most its capacity");
    // The oldest ids were evicted and no longer resolve; the newest two
    // still do (truth delivery also works for late-arriving labels).
    assert!(!server.resolve_truth(ids[0], workload[0].cardinality));
    let last = ids.len() - 1;
    assert!(server.resolve_truth(ids[last], workload[last].cardinality));

    let stats = server.shutdown();
    assert_eq!(stats.labels_recorded, workload.len() as u64);
    assert_eq!(stats.labels_dropped, stats.labels_recorded - 2);
    assert_eq!(stats.labels_resolved, 1);
}
