//! End-to-end test of the background online-learning loop: executed
//! queries feed the shared pool, the `uae-online` thread trains and
//! shadow-gates a candidate, and a promotion lands in the registry
//! through the same atomic swap point serving uses.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use uae_core::{
    OnlineConfig, OnlineTrainer, QueryPool, ResMadeConfig, TrainConfig, Uae, UaeConfig,
};
use uae_data::census_like;
use uae_query::{generate_workload, label_queries, WorkloadSpec};
use uae_server::{OnlineLearner, Registry};

#[test]
fn learner_thread_promotes_through_the_registry() {
    let rows = 400usize;
    let seed = 0x10ea5;
    let table = census_like(rows, seed);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut live = Uae::new(&table, cfg);
    live.train_data(1);

    let registry = Arc::new(Registry::new());
    let tenant = registry.register("census", live.clone());
    let before = tenant.model();

    let trainer = OnlineTrainer::new(
        &live,
        OnlineConfig { trigger_fresh: 12, holdout: 8, query_epochs: 2, ..OnlineConfig::default() },
    );
    let pool = Arc::new(QueryPool::new(256));
    let learner = OnlineLearner::start(
        registry.clone(),
        "census",
        trainer,
        pool.clone(),
        Duration::from_millis(2),
    );

    // Executed queries with ground truth arrive in waves; the learner
    // should eventually train a candidate that passes the shadow gate.
    let queries = generate_workload(&table, &WorkloadSpec::random(120, 0xfeed), &HashSet::new())
        .into_iter()
        .map(|lq| lq.query)
        .collect();
    let labeled = label_queries(&table, queries);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut fed = 0usize;
    while learner.stats().promotions == 0 && Instant::now() < deadline {
        if fed < labeled.len() {
            let wave = (fed + 20).min(labeled.len());
            pool.extend(labeled[fed..wave].iter().cloned());
            fed = wave;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let stats = learner.stats();
    let trainer = learner.stop();
    assert!(stats.promotions >= 1, "the learner never promoted: {stats:?}");
    assert!(registry.swap_epoch() >= stats.promotions, "every promotion is a registry swap");
    assert!(
        !Arc::ptr_eq(&before, &tenant.model()),
        "the tenant must now serve the promoted snapshot"
    );
    assert!(trainer.version() >= 1, "the trainer hands back its version history");
}
