//! Crash-safety integration tests: the write-ahead promotion journal,
//! the durable tenant manifest, cold-start recovery, clean-shutdown
//! round-trips, and request deadlines.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use uae_core::{
    Journal, JournalRecord, OnlineConfig, OnlineTrainer, QueryPool, ResMadeConfig, RoundOutcome,
    TrainConfig, Uae, UaeConfig, JOURNAL_FILE,
};
use uae_data::{census_like, Table};
use uae_query::{generate_workload, label_queries, CardEstimator, LabeledQuery, WorkloadSpec};
use uae_server::{
    recover_registry, Manifest, OnlineLearner, RecoverySource, Registry, Server, ServerConfig,
    ServerError,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uae_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn small_table() -> Table {
    census_like(400, 0x10ea5)
}

fn seed_model(table: &Table) -> Uae {
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut model = Uae::new(table, cfg);
    model.train_data(1);
    model
}

fn labels(table: &Table, n: usize, seed: u64) -> Vec<LabeledQuery> {
    let queries = generate_workload(table, &WorkloadSpec::random(n, seed), &HashSet::new())
        .into_iter()
        .map(|lq| lq.query)
        .collect();
    label_queries(table, queries)
}

/// Drive trainer rounds until `promotions` versions have been committed
/// through the WAL, returning the promoted models in order.
fn drive_promotions(
    trainer: &mut OnlineTrainer,
    live: &Uae,
    stream: &[LabeledQuery],
    promotions: usize,
) -> Vec<(u64, Uae)> {
    let pool = QueryPool::new(1024);
    let mut out = Vec::new();
    let mut current = live.clone();
    for (i, chunk) in stream.chunks(24).enumerate() {
        pool.extend(chunk.iter().cloned());
        match trainer.round(&pool, &current, i as u64 * 1_000_000).outcome {
            RoundOutcome::Promoted { model, version, .. }
            | RoundOutcome::RolledBack { model, version, .. } => {
                current = model.clone();
                out.push((version, model));
                if out.len() >= promotions {
                    break;
                }
            }
            RoundOutcome::PersistFailed { version, .. } => {
                panic!("no disk faults configured, yet v{version} failed to persist")
            }
            RoundOutcome::Idle | RoundOutcome::Rejected(_) => {}
        }
    }
    assert!(out.len() >= promotions, "stream too short: only {} publications", out.len());
    out
}

/// A fixed probe workload answered on a deterministic clone — the
/// bit-identity witness used across crash/recover boundaries.
fn probe(model: &Uae, table: &Table) -> Vec<f64> {
    let queries = generate_workload(table, &WorkloadSpec::random(16, 0x9e0be), &HashSet::new());
    let clone = model.clone();
    queries.iter().map(|lq| clone.estimate_card(&lq.query)).collect()
}

/// v1 and v2 are journal-committed; v2's checkpoint is then bit-flipped
/// on disk. Recovery must quarantine v2 (never delete it) and republish
/// v1, bit-identical to the surviving pre-crash version.
#[test]
fn recovery_falls_back_to_last_good_version_and_quarantines_corrupt() {
    let dir = tmp_dir("fallback");
    let table = small_table();
    let live = seed_model(&table);

    let mut trainer = OnlineTrainer::new(
        &live,
        OnlineConfig {
            trigger_fresh: 12,
            holdout: 8,
            query_epochs: 2,
            checkpoint_dir: Some(dir.clone()),
            label: "census".to_owned(),
            ..OnlineConfig::default()
        },
    );
    let stream = labels(&table, 160, 0xfeed);
    let published = drive_promotions(&mut trainer, &live, &stream, 2);
    let (v_last, _) = *published.last().map(|(v, _)| (*v, ())).as_ref().unwrap();
    let (v_prev, model_prev) = &published[published.len() - 2];

    // Corrupt the newest checkpoint in place (silent bit rot).
    let bad = dir.join(format!("census_v{v_last}.uaec"));
    let mut bytes = std::fs::read(&bad).expect("checkpoint exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&bad, &bytes).expect("rewrite corrupt checkpoint");

    let mut builder = |name: &str| (name == "census").then(|| seed_model(&table));
    let (registry, report) =
        recover_registry(&dir, &mut builder, None, None).expect("recovery succeeds");

    assert_eq!(report.tenants.len(), 1);
    let rec = &report.tenants[0];
    assert_eq!(rec.tenant, "census");
    assert_eq!(rec.version, *v_prev, "recovery falls back to the last good version");
    assert_eq!(rec.source, RecoverySource::Journal);
    assert!(
        !bad.exists() && dir.join(format!("census_v{v_last}.uaec.quarantine")).exists(),
        "the corrupt checkpoint is quarantined by rename, never deleted"
    );

    let tenant = registry.get("census").expect("tenant recovered");
    assert_eq!(tenant.version(), *v_prev);
    assert_eq!(
        tenant.model().save_weights(),
        model_prev.save_weights(),
        "recovered weights are bit-identical to the surviving version"
    );
    assert_eq!(probe(&tenant.model(), &table), probe(model_prev, &table));

    // Recovery re-establishes the baseline: manifest rewritten, journal
    // compacted, so a second cold start replays to the same state.
    let manifest = Manifest::load(&dir).expect("manifest readable").expect("manifest present");
    assert_eq!(manifest.entries["census"].version, *v_prev);
    let replay = Journal::replay(dir.join(JOURNAL_FILE)).expect("journal readable");
    assert!(replay.records.is_empty() && !replay.torn, "journal compacted to a clean header");

    std::fs::remove_dir_all(&dir).ok();
}

/// A torn journal tail (crash mid-append) is detected, quarantined as
/// evidence, and the valid prefix still proves the committed versions.
#[test]
fn torn_journal_tail_is_quarantined_and_prefix_replayed() {
    let dir = tmp_dir("torn_tail");
    let table = small_table();
    let live = seed_model(&table);

    let mut trainer = OnlineTrainer::new(
        &live,
        OnlineConfig {
            trigger_fresh: 12,
            holdout: 8,
            query_epochs: 2,
            checkpoint_dir: Some(dir.clone()),
            label: "census".to_owned(),
            ..OnlineConfig::default()
        },
    );
    let stream = labels(&table, 120, 0xfeed);
    let published = drive_promotions(&mut trainer, &live, &stream, 1);
    let (version, model) = &published[0];

    // Crash mid-append: garbage bytes after the last valid record.
    let journal_path = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal_path).expect("journal exists");
    bytes.extend_from_slice(&[0x13, 0x37, 0xde, 0xad]);
    std::fs::write(&journal_path, &bytes).expect("append torn tail");

    let mut builder = |name: &str| (name == "census").then(|| seed_model(&table));
    let (registry, report) =
        recover_registry(&dir, &mut builder, None, None).expect("recovery succeeds");

    assert!(report.journal_torn, "the torn tail must be detected");
    assert!(
        report.quarantined.iter().any(|p| p.to_string_lossy().contains("journal")),
        "the torn journal is preserved as evidence: {:?}",
        report.quarantined
    );
    let tenant = registry.get("census").expect("tenant recovered");
    assert_eq!(tenant.version(), *version);
    assert_eq!(tenant.model().save_weights(), model.save_weights());

    std::fs::remove_dir_all(&dir).ok();
}

/// Regression (issue fix): `OnlineLearner::stop` flushes a final journal
/// commit and manifest sync, so a clean shutdown and a `recover`
/// round-trip are bit-identical.
#[test]
fn learner_clean_shutdown_recover_round_trip_is_bit_identical() {
    let dir = tmp_dir("clean_shutdown");
    let table = small_table();
    let live = seed_model(&table);

    let registry = Arc::new(Registry::new());
    registry.persist_to(&dir, None).expect("attach state dir");
    let tenant = registry.register("census", live.clone());

    let trainer = OnlineTrainer::new(
        &live,
        OnlineConfig {
            trigger_fresh: 12,
            holdout: 8,
            query_epochs: 2,
            checkpoint_dir: Some(dir.clone()),
            label: "census".to_owned(),
            ..OnlineConfig::default()
        },
    );
    let pool = Arc::new(QueryPool::new(1024));
    let learner = OnlineLearner::start(
        registry.clone(),
        "census",
        trainer,
        pool.clone(),
        Duration::from_millis(2),
    );

    let labeled = labels(&table, 120, 0xfeed);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut fed = 0usize;
    while learner.stats().promotions == 0 && Instant::now() < deadline {
        if fed < labeled.len() {
            let wave = (fed + 20).min(labeled.len());
            pool.extend(labeled[fed..wave].iter().cloned());
            fed = wave;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(learner.stats().promotions >= 1, "the learner never promoted");
    let trainer = learner.stop();

    // The stop path flushed: the journal's last record is a commit for
    // the current version, and the manifest agrees with the live tenant.
    let version = trainer.version();
    let replay = Journal::replay(dir.join(JOURNAL_FILE)).expect("journal readable");
    assert!(!replay.torn, "clean shutdown leaves no torn tail");
    match replay.records.last() {
        Some(JournalRecord::Commit { tenant: t, version: v }) => {
            assert_eq!((t.as_str(), *v), ("census", version), "final record commits the version");
        }
        other => panic!("last journal record must be a commit, got {other:?}"),
    }
    let manifest = Manifest::load(&dir).expect("manifest readable").expect("manifest present");
    assert_eq!(manifest.entries["census"].version, tenant.version());
    assert_eq!(manifest.entries["census"].checkpoint, tenant.checkpoint());

    // The recover round-trip republishes the same version with
    // bit-identical weights and answers.
    let pre_crash = tenant.model();
    let mut builder = |name: &str| (name == "census").then(|| seed_model(&table));
    let (recovered, report) =
        recover_registry(&dir, &mut builder, None, None).expect("recovery succeeds");
    assert!(report.quarantined.is_empty(), "a clean shutdown quarantines nothing");
    let rec_tenant = recovered.get("census").expect("tenant recovered");
    assert_eq!(rec_tenant.version(), tenant.version());
    assert_eq!(rec_tenant.model().save_weights(), pre_crash.save_weights());
    assert_eq!(probe(&rec_tenant.model(), &table), probe(&pre_crash, &table));

    std::fs::remove_dir_all(&dir).ok();
}

/// Requests whose `submit_with_deadline` budget expires while queued are
/// dropped at flush with a typed reply and their own counter — distinct
/// from the `Overloaded` shed.
#[test]
fn expired_deadlines_are_dropped_and_counted_separately() {
    let table = small_table();
    let model = seed_model(&table);
    let registry = Arc::new(Registry::new());
    registry.register("census", model);

    // Paused dispatcher: requests sit in the queue until shutdown drains
    // them, by which point the short deadlines have long expired.
    let server = Server::start(registry, ServerConfig::deterministic(64));
    let workload = generate_workload(&table, &WorkloadSpec::random(8, 0xabc), &HashSet::new());

    let expired: Vec<_> = workload[..4]
        .iter()
        .map(|lq| {
            server
                .submit_with_deadline("census", lq.query.clone(), Duration::from_millis(1))
                .expect("accepted")
        })
        .collect();
    let live: Vec<_> = workload[4..]
        .iter()
        .map(|lq| server.submit("census", lq.query.clone()).expect("accepted"))
        .collect();

    std::thread::sleep(Duration::from_millis(20));
    let stats = server.shutdown();

    for ticket in expired {
        assert_eq!(ticket.wait(), Err(ServerError::DeadlineExceeded));
    }
    for ticket in live {
        assert!(ticket.wait().is_ok(), "undeadlined requests still execute");
    }
    assert_eq!(stats.deadline_exceeded, 4);
    assert_eq!(stats.rejected_overloaded, 0, "deadline drops are not an overload shed");
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.queue_depth, 0, "every accepted request exited the gauge");
}
