//! End-to-end tests for the concurrent serving front-end: deterministic
//! replay against the engine's own batch path, typed backpressure,
//! batch-level panic isolation, and the SLO degradation ladder.

use std::collections::HashSet;
use std::sync::Arc;

use uae_core::{
    EstimateSource, ResMadeConfig, ServeEvent, ServeMemoryObserver, TrainConfig, Uae, UaeConfig,
};
use uae_data::census_like;
use uae_query::{generate_workload, Query, WorkloadSpec};
use uae_server::{
    DegradeConfig, Registry, Server, ServerConfig, ServerError, ServerFaultPlan, SubmitError,
};

fn quick_uae(rows: usize, seed: u64) -> Uae {
    let t = census_like(rows, seed);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(1);
    uae
}

fn quick_queries(rows: usize, seed: u64, n: usize, qseed: u64) -> Vec<Query> {
    let t = census_like(rows, seed);
    generate_workload(&t, &WorkloadSpec::random(n, qseed), &HashSet::new())
        .into_iter()
        .map(|lq| lq.query)
        .collect()
}

/// Satellite 1 — the determinism escape hatch. One executor, unbounded
/// batch, paused dispatcher: a submitted request sequence drains as a
/// single batch whose replies are bit-identical to
/// [`Uae::try_estimate_cards`] on the same queries in the same order.
#[test]
fn deterministic_replay_matches_estimate_batch() {
    let uae = quick_uae(700, 31);
    let queries = quick_queries(700, 31, 24, 91);

    // Clones reseed the estimation RNG identically, so the reference
    // clone and the served clone consume matching seed streams.
    let reference = uae.clone();
    let expected = reference.try_estimate_cards(&queries);

    let registry = Arc::new(Registry::new());
    registry.register("census", uae.clone());
    let server = Server::start(registry, ServerConfig::deterministic(queries.len()));
    let (obs, events) = ServeMemoryObserver::new();
    server.set_observer(Box::new(obs));

    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit("census", q.clone()).expect("paused queue holds the workload"))
        .collect();
    let stats = server.shutdown();

    for (ticket, want) in tickets.into_iter().zip(&expected) {
        match (ticket.wait(), want) {
            (Ok(got), Ok(want)) => assert_eq!(&got, want, "reply differs from batch path"),
            (Err(ServerError::Estimate(got)), Err(want)) => assert_eq!(&got, want),
            (got, want) => panic!("outcome class mismatch: {got:?} vs {want:?}"),
        }
    }

    assert_eq!(stats.accepted, queries.len() as u64);
    assert_eq!(stats.batches, 1, "replay must execute as one batch");
    assert_eq!(stats.flush_drain, 1);
    assert_eq!(stats.flush_size + stats.flush_deadline, 0);
    assert_eq!(stats.completed + stats.query_errors, queries.len() as u64);
    assert_eq!(stats.queue_depth, 0, "every accepted request was answered");

    let events = events.lock().expect("event log");
    let flushed = events.iter().filter(|e| matches!(e, ServeEvent::BatchFlushed { .. })).count();
    let served = events.iter().filter(|e| matches!(e, ServeEvent::RequestServed { .. })).count();
    assert_eq!(flushed as u64, stats.batches);
    assert_eq!(served as u64, stats.accepted);
}

/// Satellite 3a — backpressure. A full bounded queue rejects the
/// submitter immediately with a typed error; nothing blocks, the counts
/// reconcile, and the queued requests all complete once the dispatcher
/// resumes.
#[test]
fn overload_rejects_typed_without_blocking() {
    let uae = quick_uae(400, 17);
    let queries = quick_queries(400, 17, 12, 55);
    let registry = Arc::new(Registry::new());
    registry.register("census", uae);
    let cap = 8usize;
    let server = Server::start(
        registry,
        ServerConfig {
            queue_capacity: cap,
            start_paused: true,
            degrade: DegradeConfig::disabled(),
            ..ServerConfig::default()
        },
    );

    let mut tickets = Vec::new();
    for q in queries.iter().take(cap) {
        tickets.push(server.submit("census", q.clone()).expect("under capacity"));
    }
    // The queue is full and the dispatcher is paused: the next submits
    // must bounce right here rather than block the caller.
    for q in queries.iter().skip(cap) {
        assert_eq!(server.submit("census", q.clone()).unwrap_err(), SubmitError::Overloaded);
    }
    assert_eq!(
        server.submit("nobody", queries[0].clone()).unwrap_err(),
        SubmitError::UnknownTenant("nobody".to_owned())
    );

    let mid = server.stats();
    assert_eq!(mid.accepted, cap as u64);
    assert_eq!(mid.rejected_overloaded, (queries.len() - cap) as u64);
    assert_eq!(mid.rejected_unknown_tenant, 1);
    assert_eq!(mid.submitted, queries.len() as u64 + 1);
    assert_eq!(mid.queue_depth, cap);

    // Resuming drains the backlog; every accepted request completes.
    server.resume();
    for t in tickets {
        t.wait().expect("accepted requests complete after resume");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, cap as u64);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.max_queue_depth, cap);
}

/// Satellite 3b — panic isolation drill. An executor-level panic (fault
/// plan keyed by batch sequence) fails only that batch's requests; the
/// executor thread survives and the other tenant's batch is served
/// normally.
#[test]
fn executor_panic_fails_only_its_batch() {
    let alpha = quick_uae(500, 23);
    let beta = quick_uae(500, 29);
    let qa = quick_queries(500, 23, 6, 71);
    let qb = quick_queries(500, 29, 5, 73);

    let registry = Arc::new(Registry::new());
    registry.register("alpha", alpha);
    registry.register("beta", beta);
    let server = Server::start(
        registry,
        ServerConfig {
            // Drain order is lane order: batch 0 = alpha, batch 1 = beta.
            fault: ServerFaultPlan { panic_batches: vec![0] },
            executors: 1,
            start_paused: true,
            degrade: DegradeConfig::disabled(),
            ..ServerConfig::deterministic(64)
        },
    );

    let ta: Vec<_> =
        qa.iter().map(|q| server.submit("alpha", q.clone()).expect("capacity")).collect();
    let tb: Vec<_> =
        qb.iter().map(|q| server.submit("beta", q.clone()).expect("capacity")).collect();
    let stats = server.shutdown();

    for t in ta {
        assert_eq!(t.wait().unwrap_err(), ServerError::ExecutorPanic);
    }
    for t in tb {
        t.wait().expect("the panic must not leak into beta's batch");
    }
    assert_eq!(stats.executor_panics, 1);
    assert_eq!(stats.failed, qa.len() as u64);
    assert_eq!(stats.completed + stats.query_errors, qb.len() as u64);
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.queue_depth, 0, "panicked batch still replied to everyone");
}

/// The degradation ladder engages on queue depth: a deep backlog at
/// flush time shrinks the batch's sample budget, replies are tagged
/// [`EstimateSource::ModelDegraded`], and both the front-end and the
/// model-level counters record it.
#[test]
fn degradation_engages_under_queue_depth() {
    let uae = quick_uae(600, 37);
    let queries = quick_queries(600, 37, 16, 83);
    let registry = Arc::new(Registry::new());
    let tenant = registry.register("census", uae);
    let server = Server::start(
        registry,
        ServerConfig {
            degrade: DegradeConfig { queue_depth_threshold: 4, ..DegradeConfig::default() },
            ..ServerConfig::deterministic(64)
        },
    );

    let tickets: Vec<_> =
        queries.iter().map(|q| server.submit("census", q.clone()).expect("capacity")).collect();
    // 16 in flight > threshold 4 at drain-flush time: rung 1 engages.
    let stats = server.shutdown();

    let mut degraded = 0u64;
    for t in tickets {
        if let Ok(est) = t.wait() {
            if est.source == EstimateSource::ModelDegraded {
                degraded += 1;
            }
        }
    }
    assert!(degraded > 0, "no reply was tagged ModelDegraded");
    assert_eq!(stats.degraded_requests, degraded);
    let model_stats = tenant.model().serve_stats();
    assert_eq!(model_stats.degraded, degraded, "model-level counter must agree");
}

/// Hot swap: re-publishing a tenant's model takes effect for the next
/// batch while the old snapshot stays alive for whoever holds it.
#[test]
fn swap_model_publishes_new_snapshot() {
    let registry = Arc::new(Registry::new());
    let tenant = registry.register("census", quick_uae(300, 41));
    let before = tenant.model();
    let old = registry.swap_model("census", quick_uae(300, 43)).expect("registered");
    assert!(Arc::ptr_eq(&before, &old), "swap returns the previous snapshot");
    assert!(!Arc::ptr_eq(&before, &tenant.model()), "lookups now see the new model");
    assert!(registry.swap_model("nobody", quick_uae(300, 47)).is_err());

    // The swapped-in model serves.
    let server = Server::start(registry, ServerConfig::deterministic(8));
    let t = server.submit("census", quick_queries(300, 43, 1, 7).remove(0)).expect("capacity");
    server.shutdown();
    t.wait().expect("estimate from the swapped model");
}

/// Satellite 3 (this PR) — swap-time hygiene: the rolling latency
/// window drops its pre-swap samples at the first post-swap flush, so
/// the degradation ladder's p99 signal never judges the new model by
/// the old model's latencies.
#[test]
fn latency_window_resets_on_hot_swap() {
    let registry = Arc::new(Registry::new());
    registry.register("census", quick_uae(400, 53));
    let server = Server::start(
        registry.clone(),
        ServerConfig { degrade: DegradeConfig::disabled(), ..ServerConfig::default() },
    );

    let warmup = quick_queries(400, 53, 6, 59);
    let tickets: Vec<_> =
        warmup.iter().map(|q| server.submit("census", q.clone()).expect("capacity")).collect();
    for t in tickets {
        t.wait().expect("warmup completes");
    }
    let before = server.latency_samples();
    assert_eq!(before, warmup.len(), "warmup latencies recorded");

    registry.swap_model("census", quick_uae(400, 61)).expect("registered");

    // The next flush observes the bumped swap epoch, resets the window,
    // and only then records this batch's end-to-end latency.
    let t = server.submit("census", quick_queries(400, 61, 1, 67).remove(0)).expect("capacity");
    t.wait().expect("post-swap request completes");
    assert_eq!(
        server.latency_samples(),
        1,
        "pre-swap samples must be gone; only the post-swap batch remains"
    );
    server.shutdown();
}

/// Satellite 4 — the hot-swap race drill: one thread swaps the tenant
/// between two models while submitter threads keep batches in flight.
/// Every request must be answered by exactly one model version — the
/// two models sit over tables of 300 vs 301 rows, and an unconstrained
/// query's estimate is *exactly* the serving table's row count, so a
/// torn read would be visible as any other value. Counters reconcile.
#[test]
fn hot_swap_race_answers_every_request_from_exactly_one_version() {
    let rows_a = 300usize;
    let rows_b = 301usize;
    let registry = Arc::new(Registry::new());
    registry.register("census", quick_uae(rows_a, 71));
    let server = Arc::new(Server::start(
        registry.clone(),
        ServerConfig {
            max_batch: 4,
            degrade: DegradeConfig::disabled(),
            ..ServerConfig::default()
        },
    ));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let swapper = {
        let registry = registry.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let rows = if swaps % 2 == 0 { rows_b } else { rows_a };
                registry.swap_model("census", quick_uae(rows, 71 + swaps)).expect("registered");
                swaps += 1;
            }
            swaps
        })
    };

    let submitters: Vec<_> = (0..3)
        .map(|_| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut cards = Vec::new();
                for _ in 0..60 {
                    // Trivial (unconstrained) queries shortcut to the
                    // exact row count of whichever snapshot served them.
                    if let Ok(ticket) = server.submit("census", Query::default()) {
                        cards.push(ticket.wait().expect("trivial query serves").card);
                    }
                }
                cards
            })
        })
        .collect();

    let mut answered = 0u64;
    for handle in submitters {
        for card in handle.join().expect("submitter thread") {
            assert!(
                card == rows_a as f64 || card == rows_b as f64,
                "reply must come from exactly one model version, got card {card}"
            );
            answered += 1;
        }
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let swaps = swapper.join().expect("swapper thread");
    assert!(swaps > 0, "the drill must actually swap");

    let server = Arc::into_inner(server).expect("submitters released their handles");
    let stats = server.shutdown();
    assert_eq!(stats.accepted, answered, "every accepted request got exactly one reply");
    assert_eq!(
        stats.completed + stats.query_errors + stats.failed,
        stats.accepted,
        "terminal counters must reconcile with accepted"
    );
}
