//! Finite-difference gradient checking.
//!
//! Used throughout the test suites to validate the backward pass of every
//! op and of composite graphs (including the differentiable progressive
//! sampling pipeline in `uae-core`).

use crate::tape::{GradStore, NodeId, ParamId, ParamStore, Tape, TapeWorkspace};

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheck {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude).
    pub max_rel_err: f32,
}

/// Compare analytic gradients against central finite differences for every
/// parameter in `store`.
///
/// `f` rebuilds the loss graph on a fresh tape each call (it must be a pure
/// function of the parameter store for the comparison to be valid — seed any
/// internal randomness identically across calls).
///
/// Returns the worst-case error over all parameters.
pub fn gradient_check(
    store: &mut ParamStore,
    eps: f32,
    mut f: impl FnMut(&mut Tape<'_>) -> NodeId,
) -> GradCheck {
    // One workspace serves every finite-difference evaluation — the graph
    // shape is identical across calls, so after the first build no tensor
    // allocations happen in the tape layer.
    let mut ws = TapeWorkspace::new();

    // Analytic gradients.
    let mut grads = GradStore::zeros_like(store);
    {
        let mut tape = Tape::with_workspace(store, &mut ws);
        let loss = f(&mut tape);
        tape.backward(loss, &mut grads);
    }

    let mut max_abs_err = 0.0f32;
    let mut max_rel_err = 0.0f32;
    let param_ids: Vec<ParamId> = store.ids().collect();
    for pid in param_ids {
        for i in 0..store.get(pid).len() {
            let orig = store.get(pid).data()[i];

            store.get_mut(pid).data_mut()[i] = orig + eps;
            let up = {
                let mut tape = Tape::with_workspace(store, &mut ws);
                let loss = f(&mut tape);
                tape.value(loss).scalar_value()
            };
            store.get_mut(pid).data_mut()[i] = orig - eps;
            let down = {
                let mut tape = Tape::with_workspace(store, &mut ws);
                let loss = f(&mut tape);
                tape.value(loss).scalar_value()
            };
            store.get_mut(pid).data_mut()[i] = orig;

            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.get(pid).data()[i];
            let abs = (numeric - analytic).abs();
            let rel = abs / numeric.abs().max(analytic.abs()).max(1e-4);
            max_abs_err = max_abs_err.max(abs);
            max_rel_err = max_rel_err.max(rel);
        }
    }
    GradCheck { max_abs_err, max_rel_err }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::tensor::Tensor;
    use rand::RngExt;
    use std::sync::Arc;

    fn random_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
        let mut rng = seeded_rng(seed);
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.random_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn check_mlp_with_softmax_gather() {
        let mut store = ParamStore::new();
        // Seeds chosen so no ReLU pre-activation sits within `eps` of its
        // kink, where central differences stop approximating the
        // subgradient.
        let w1 = store.add("w1", random_tensor(91, 3, 5));
        let b1 = store.add("b1", random_tensor(92, 1, 5));
        let w2 = store.add("w2", random_tensor(93, 5, 4));
        let x = random_tensor(94, 2, 3);
        let targets = Arc::new(vec![1u32, 3]);

        let res = gradient_check(&mut store, 1e-3, |tape| {
            let xin = tape.input(x.clone());
            let w1n = tape.param(w1);
            let b1n = tape.param(b1);
            let w2n = tape.param(w2);
            let h = tape.matmul(xin, w1n);
            let h = tape.add_bias(h, b1n);
            let h = tape.relu(h);
            let logits = tape.matmul(h, w2n);
            let ls = tape.log_softmax(logits);
            let picked = tape.gather_cols(ls, targets.clone());
            let neg = tape.mul_scalar(picked, -1.0);
            tape.mean_all(neg)
        });
        assert!(res.max_rel_err < 2e-2, "rel err {}", res.max_rel_err);
    }

    #[test]
    fn check_masked_matmul() {
        let mut store = ParamStore::new();
        let w = store.add("w", random_tensor(10, 4, 3));
        let mask = Arc::new(Tensor::from_vec(
            4,
            3,
            vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0],
        ));
        let x = random_tensor(11, 2, 4);
        let res = gradient_check(&mut store, 1e-3, |tape| {
            let xin = tape.input(x.clone());
            let wn = tape.param(w);
            let y = tape.matmul_masked(xin, wn, mask.clone());
            let sq = tape.mul(y, y);
            tape.mean_all(sq)
        });
        assert!(res.max_rel_err < 1e-2, "rel err {}", res.max_rel_err);
    }

    #[test]
    fn check_div_exp_ln_chain() {
        let mut store = ParamStore::new();
        // Keep values positive and away from zero for ln and div.
        let a = store.add("a", Tensor::from_vec(1, 3, vec![0.7, 1.3, 2.1]));
        let b = store.add("b", Tensor::from_vec(1, 3, vec![1.9, 0.8, 1.1]));
        let res = gradient_check(&mut store, 1e-3, |tape| {
            let an = tape.param(a);
            let bn = tape.param(b);
            let d = tape.div(an, bn);
            let e = tape.exp(d);
            let l = tape.ln(e);
            let s = tape.sigmoid(l);
            tape.mean_all(s)
        });
        assert!(res.max_rel_err < 1e-2, "rel err {}", res.max_rel_err);
    }

    #[test]
    fn check_qerror_like_loss() {
        // max(p/t, t/p) — the paper's Q-error discrepancy (Eq. 6) with
        // a subgradient through max; check away from the tie point.
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::from_vec(2, 1, vec![0.2, 0.9]));
        let truth = Tensor::from_vec(2, 1, vec![0.5, 0.3]);
        let res = gradient_check(&mut store, 1e-4, |tape| {
            let pn = tape.param(p);
            let pn = tape.clamp_min(pn, 1e-6);
            let t = tape.input(truth.clone());
            let r1 = tape.div(pn, t);
            let t2 = tape.input(truth.clone());
            let pn2 = tape.param(p);
            let pn2 = tape.clamp_min(pn2, 1e-6);
            let r2 = tape.div(t2, pn2);
            let q = tape.maximum(r1, r2);
            tape.mean_all(q)
        });
        assert!(res.max_rel_err < 1e-2, "rel err {}", res.max_rel_err);
    }

    #[test]
    fn check_mul_col_broadcast_and_row_groups() {
        let mut store = ParamStore::new();
        let x = store.add("x", random_tensor(20, 4, 3));
        let v = store.add("v", random_tensor(21, 4, 1));
        let res = gradient_check(&mut store, 1e-3, |tape| {
            let xn = tape.param(x);
            let vn = tape.param(v);
            let y = tape.mul_col_broadcast(xn, vn);
            let m = tape.mean_row_groups(y, 2);
            let sq = tape.mul(m, m);
            tape.mean_all(sq)
        });
        assert!(res.max_rel_err < 1e-2, "rel err {}", res.max_rel_err);
    }
}
