//! # uae-tensor — minimal CPU autodiff for the UAE cardinality estimator
//!
//! The UAE paper (Wu & Cong, SIGMOD 2021) trains a deep autoregressive model
//! with gradients flowing through *differentiable progressive sampling*
//! (Gumbel-Softmax). The Rust deep-learning ecosystem does not offer a small,
//! dependency-free engine for that, so this crate provides one:
//!
//! * [`Tensor`] — dense row-major `f32` matrices;
//! * [`Tape`] — eager-forward, tape-based reverse-mode autodiff with the op
//!   set the estimator needs (masked matmul for MADE, sliced softmaxes,
//!   gathers, broadcast products, `max` with subgradients, …);
//! * [`ParamStore`] / [`GradStore`] — parameters and gradient accumulators
//!   that outlive individual tapes;
//! * [`Adam`] / [`Sgd`] — optimizers;
//! * [`rng`] — seeded initializers and Gumbel(0,1) noise (paper Eq. 9);
//! * [`check::gradient_check`] — finite-difference validation used by tests.
//!
//! The engine is deliberately small: 2-D tensors only, no broadcasting rules
//! beyond the two broadcast ops the model needs, and no implicit
//! parallelism. Batches of (query, sample) pairs map naturally onto rows.

pub mod check;
pub mod optim;
pub mod pool;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod tape;
pub mod tensor;

pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use pool::{configure_pool_threads, pool_threads};
pub use quant::{QuantMatrix, QuantMode};
pub use simd::Backend;
pub use tape::{GradStore, NodeId, ParamId, ParamStore, Tape, TapePlan, TapeWorkspace};
pub use tensor::{tensor_alloc_count, Tensor};
