//! First-order optimizers over a [`ParamStore`].

use crate::tape::{GradStore, ParamStore};
use crate::tensor::Tensor;

/// Interface shared by all optimizers.
pub trait Optimizer {
    /// Apply one update step from accumulated gradients.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// SGD with learning rate `lr` and momentum coefficient `momentum`
    /// (0.0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjust the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        if self.velocity.is_empty() && self.momentum != 0.0 {
            self.velocity = params
                .ids()
                .map(|id| {
                    let t = params.get(id);
                    Tensor::zeros(t.rows(), t.cols())
                })
                .collect();
        }
        for id in params.ids() {
            let g = grads.get(id);
            if self.momentum != 0.0 {
                let v = &mut self.velocity[id.index()];
                for (vj, gj) in v.data_mut().iter_mut().zip(g.data()) {
                    *vj = self.momentum * *vj + gj;
                }
                let v = self.velocity[id.index()].clone();
                params.get_mut(id).add_scaled(&v, -self.lr);
            } else {
                params.get_mut(id).add_scaled(g, -self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba) — the optimizer used to train UAE in the paper's
/// reference implementation.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

/// The mutable state of an [`Adam`] optimizer — first/second moments and
/// the bias-correction step count. Checkpointing this alongside the
/// parameters makes a resumed run bit-identical to an uninterrupted one;
/// without it the restored optimizer re-warms its moments from zero and
/// the trajectories diverge.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Update steps applied so far (drives bias correction).
    pub t: u64,
    /// First-moment (mean) accumulators, one per parameter; empty when no
    /// step has been applied yet (the optimizer initializes lazily).
    pub m: Vec<Tensor>,
    /// Second-moment (uncentered variance) accumulators.
    pub v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard defaults `beta1=0.9`, `beta2=0.999`, `eps=1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjust the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Snapshot the optimizer state (moments + step count) for
    /// checkpointing. The learning rate is configuration, not state; it is
    /// carried separately (see [`Adam::lr`] / [`Adam::set_lr`]).
    pub fn state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restore a state captured by [`Adam::state`]. The caller is
    /// responsible for pairing it with the matching parameter values; an
    /// empty-moment state resets the optimizer to its lazy-init condition.
    pub fn restore(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    fn lazy_init(&mut self, params: &ParamStore) {
        if self.m.is_empty() {
            let zeros = |p: &ParamStore| {
                p.ids()
                    .map(|id| {
                        let t = p.get(id);
                        Tensor::zeros(t.rows(), t.cols())
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(params);
            self.v = zeros(params);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.lazy_init(params);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for id in params.ids() {
            let g = grads.get(id).data();
            let m = self.m[id.index()].data_mut();
            let v = self.v[id.index()].data_mut();
            let p = params.get_mut(id).data_mut();
            for i in 0..p.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{GradStore, ParamStore, Tape};

    /// Minimize (w - 3)^2 and check convergence.
    fn converges(mut opt: impl Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            let mut grads = GradStore::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let w = tape.param(id);
            let target = tape.input(Tensor::scalar(3.0));
            let d = tape.sub(w, target);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        store.get(id).scalar_value()
    }

    #[test]
    fn sgd_converges() {
        let w = converges(Sgd::new(0.1, 0.0));
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = converges(Sgd::new(0.05, 0.9));
        assert!((w - 3.0).abs() < 1e-2, "sgd+momentum ended at {w}");
    }

    #[test]
    fn adam_converges() {
        let w = converges(Adam::new(0.05));
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }

    /// One deterministic gradient step on a two-parameter store.
    fn apply_step(opt: &mut Adam, store: &mut ParamStore, scale: f32) {
        let ids: Vec<_> = store.ids().collect();
        let mut grads = GradStore::zeros_like(store);
        for (k, &id) in ids.iter().enumerate() {
            for (i, g) in grads.get_mut(id).data_mut().iter_mut().enumerate() {
                *g = scale * (0.1 + k as f32 + i as f32 * 0.01);
            }
        }
        opt.step(store, &grads);
    }

    #[test]
    fn adam_state_restore_is_bit_exact() {
        let mk_store = || {
            let mut s = ParamStore::new();
            s.add("w", Tensor::from_vec(2, 2, vec![0.5, -0.25, 1.0, 2.0]));
            s.add("b", Tensor::from_vec(1, 2, vec![0.0, 0.1]));
            s
        };
        // Uninterrupted: 10 steps.
        let mut full_store = mk_store();
        let mut full_opt = Adam::new(1e-2);
        for i in 0..10 {
            apply_step(&mut full_opt, &mut full_store, 1.0 + i as f32 * 0.3);
        }
        // Interrupted: 4 steps, snapshot, restore into a fresh optimizer,
        // 6 more steps — must match bit-for-bit.
        let mut part_store = mk_store();
        let mut part_opt = Adam::new(1e-2);
        for i in 0..4 {
            apply_step(&mut part_opt, &mut part_store, 1.0 + i as f32 * 0.3);
        }
        let state = part_opt.state();
        let mut resumed = Adam::new(1e-2);
        resumed.restore(state);
        for i in 4..10 {
            apply_step(&mut resumed, &mut part_store, 1.0 + i as f32 * 0.3);
        }
        for (a, b) in full_store.ids().zip(part_store.ids()) {
            assert_eq!(full_store.get(a), part_store.get(b));
        }
        // Without the restored moments the trajectory differs.
        let mut cold_store = mk_store();
        let mut cold_opt = Adam::new(1e-2);
        for i in 0..4 {
            apply_step(&mut cold_opt, &mut cold_store, 1.0 + i as f32 * 0.3);
        }
        let mut fresh = Adam::new(1e-2);
        for i in 4..10 {
            apply_step(&mut fresh, &mut cold_store, 1.0 + i as f32 * 0.3);
        }
        let diverged = full_store
            .ids()
            .zip(cold_store.ids())
            .any(|(a, b)| full_store.get(a) != cold_store.get(b));
        assert!(diverged, "dropping optimizer state should change the trajectory");
    }
}
