//! First-order optimizers over a [`ParamStore`].

use crate::tape::{GradStore, ParamStore};
use crate::tensor::Tensor;

/// Interface shared by all optimizers.
pub trait Optimizer {
    /// Apply one update step from accumulated gradients.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// SGD with learning rate `lr` and momentum coefficient `momentum`
    /// (0.0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjust the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        if self.velocity.is_empty() && self.momentum != 0.0 {
            self.velocity = params
                .ids()
                .map(|id| {
                    let t = params.get(id);
                    Tensor::zeros(t.rows(), t.cols())
                })
                .collect();
        }
        for id in params.ids() {
            let g = grads.get(id);
            if self.momentum != 0.0 {
                let v = &mut self.velocity[id.index()];
                for (vj, gj) in v.data_mut().iter_mut().zip(g.data()) {
                    *vj = self.momentum * *vj + gj;
                }
                let v = self.velocity[id.index()].clone();
                params.get_mut(id).add_scaled(&v, -self.lr);
            } else {
                params.get_mut(id).add_scaled(g, -self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba) — the optimizer used to train UAE in the paper's
/// reference implementation.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard defaults `beta1=0.9`, `beta2=0.999`, `eps=1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjust the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lazy_init(&mut self, params: &ParamStore) {
        if self.m.is_empty() {
            let zeros = |p: &ParamStore| {
                p.ids()
                    .map(|id| {
                        let t = p.get(id);
                        Tensor::zeros(t.rows(), t.cols())
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(params);
            self.v = zeros(params);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.lazy_init(params);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for id in params.ids() {
            let g = grads.get(id).data();
            let m = self.m[id.index()].data_mut();
            let v = self.v[id.index()].data_mut();
            let p = params.get_mut(id).data_mut();
            for i in 0..p.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{GradStore, ParamStore, Tape};

    /// Minimize (w - 3)^2 and check convergence.
    fn converges(mut opt: impl Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            let mut grads = GradStore::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let w = tape.param(id);
            let target = tape.input(Tensor::scalar(3.0));
            let d = tape.sub(w, target);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        store.get(id).scalar_value()
    }

    #[test]
    fn sgd_converges() {
        let w = converges(Sgd::new(0.1, 0.0));
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = converges(Sgd::new(0.05, 0.9));
        assert!((w - 3.0).abs() < 1e-2, "sgd+momentum ended at {w}");
    }

    #[test]
    fn adam_converges() {
        let w = converges(Adam::new(0.05));
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }
}
