//! Persistent worker pool for data-parallel kernels.
//!
//! The seed implementation spawned fresh OS threads inside
//! `std::thread::scope` on every large matmul — a per-call cost of tens of
//! microseconds that dominates medium-sized kernels and throttles the
//! progressive-sampling serving path. This module replaces per-call
//! spawning with a **lazily initialized, process-wide pool** of detached
//! workers fed through a channel of type-erased jobs.
//!
//! Design:
//!
//! * A job is a `Fn(usize)` run once for each index in `0..n`. Indices are
//!   claimed from a shared atomic counter, so workers load-balance
//!   automatically.
//! * The **caller participates**: after enqueuing, the submitting thread
//!   claims indices like any worker and then waits on a per-job latch.
//!   This makes nested `parallel_for` calls deadlock-free — even if every
//!   pool worker is busy, the caller drains its own job — and it keeps
//!   single-core machines on a zero-handoff fast path.
//! * Borrowed closures are sound because the caller does not return until
//!   the latch reports every index finished; the job's lifetime is erased
//!   only inside that window.
//! * Worker panics are caught, the remaining indices are drained, and the
//!   panic is re-raised on the calling thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of threads `parallel_for` spreads work across (workers + the
/// participating caller).
pub fn pool_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8)
}

/// A type-erased parallel-for job. `func` points at a caller-owned closure;
/// the caller guarantees it outlives the job by blocking on [`Job::wait`].
struct Job {
    /// `&dyn Fn(usize)` with its lifetime erased.
    func: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Total number of indices.
    total: usize,
    /// Indices not yet finished, guarded for the completion latch.
    remaining: Mutex<usize>,
    /// Signaled when `remaining` reaches zero.
    done: Condvar,
    /// Set when any index panicked.
    panicked: AtomicBool,
}

// SAFETY: `func` is only dereferenced between submission and latch
// release, during which the caller keeps the closure alive; the closure
// itself is `Sync`, so shared calls from several workers are allowed.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run indices until the job is exhausted.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // SAFETY: `i < total`, so the caller is still blocked in
            // `wait` and the closure is alive.
            let func = unsafe { &*self.func };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(i)));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            let mut remaining = self.remaining.lock().expect("pool latch");
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Block until every index has finished.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("pool latch");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("pool latch");
        }
    }
}

/// The shared injector queue workers sleep on.
struct Injector {
    queue: Mutex<VecDeque<Arc<Job>>>,
    ready: Condvar,
}

fn injector() -> &'static Injector {
    static POOL: OnceLock<Injector> = OnceLock::new();
    POOL.get_or_init(|| {
        let inj = Injector { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() };
        // The caller always participates, so spawn one fewer worker than
        // the target width. On a single-core machine this spawns nothing
        // and `parallel_for` degenerates to an inline loop.
        for i in 0..pool_threads().saturating_sub(1) {
            std::thread::Builder::new()
                .name(format!("uae-pool-{i}"))
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
        inj
    })
}

fn worker_loop() {
    let inj = injector();
    loop {
        let job = {
            let mut queue = inj.queue.lock().expect("pool queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inj.ready.wait(queue).expect("pool queue");
            }
        };
        job.drain();
    }
}

/// Run `f(i)` for every `i in 0..n`, spread across the persistent pool.
/// Blocks until all indices complete; panics (on the caller) if any index
/// panicked. `n` is expected to be small — a handful of chunks, not one
/// call per element.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    match n {
        0 => return,
        1 => {
            f(0);
            return;
        }
        _ => {}
    }
    let workers = pool_threads() - 1;
    if workers == 0 {
        // Single-core: no pool threads exist; run inline.
        for i in 0..n {
            f(i);
        }
        return;
    }
    let erased: &(dyn Fn(usize) + Sync) = &f;
    let job = Arc::new(Job {
        // SAFETY: lifetime erasure; `wait` below outlives every deref.
        func: unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(erased)
        },
        next: AtomicUsize::new(0),
        total: n,
        remaining: Mutex::new(n),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let inj = injector();
    {
        let mut queue = inj.queue.lock().expect("pool queue");
        // One queue entry per helper that could usefully join; each entry
        // is just a handle — indices are claimed from the shared counter.
        for _ in 0..workers.min(n - 1) {
            queue.push_back(Arc::clone(&job));
        }
    }
    inj.ready.notify_all();
    job.drain();
    job.wait();
    if job.panicked.load(Ordering::Relaxed) {
        panic!("uae-pool job panicked");
    }
}

/// Run `f(i)` for `i in 0..n` and collect the results in index order.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = SendPtr(out.as_mut_ptr());
    parallel_for(n, |i| {
        let slot = slots;
        // SAFETY: each index is claimed exactly once, so writes are
        // disjoint; the vec outlives `parallel_for`, which blocks.
        unsafe { *slot.0.add(i) = Some(f(i)) };
    });
    out.into_iter().map(|v| v.expect("pool slot filled")).collect()
}

/// Raw-pointer wrapper for disjoint per-index writes from pool workers.
pub(crate) struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: users of `SendPtr` uphold one-writer-per-disjoint-region.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_once() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "n={n}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn nested_parallel_for_completes() {
        let total = AtomicU64::new(0);
        parallel_for(4, |_| {
            parallel_for(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (0..8).sum::<u64>());
    }

    #[test]
    fn borrows_stack_data() {
        let data: Vec<u64> = (0..1024).collect();
        let sums = parallel_map(8, |c| data[c * 128..(c + 1) * 128].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), (0..1024).sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // Pool stays usable afterwards.
        let out = parallel_map(8, |i| i);
        assert_eq!(out.len(), 8);
    }
}
