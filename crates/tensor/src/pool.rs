//! Persistent worker pool for data-parallel kernels.
//!
//! The seed implementation spawned fresh OS threads inside
//! `std::thread::scope` on every large matmul — a per-call cost of tens of
//! microseconds that dominates medium-sized kernels and throttles the
//! progressive-sampling serving path. This module replaces per-call
//! spawning with a **lazily initialized, process-wide pool** of detached
//! workers fed through a channel of type-erased jobs.
//!
//! Design:
//!
//! * A job is a `Fn(usize)` run once for each index in `0..n`. Indices are
//!   claimed from a shared atomic counter, so workers load-balance
//!   automatically.
//! * The **caller participates**: after enqueuing, the submitting thread
//!   claims indices like any worker and then waits on a per-job latch.
//!   This makes nested `parallel_for` calls deadlock-free — even if every
//!   pool worker is busy, the caller drains its own job — and it keeps
//!   single-core machines on a zero-handoff fast path.
//! * Borrowed closures are sound because the caller does not return until
//!   the latch reports every index finished; the job's lifetime is erased
//!   only inside that window.
//! * Worker panics are caught, the remaining indices are drained, and the
//!   panic is re-raised on the calling thread.
//! * A worker thread that nevertheless dies unwinding (only possible via
//!   injected faults today, but any future bug qualifies) is **respawned**
//!   by a drop guard, so the pool returns to full strength instead of
//!   silently shrinking toward a serial pool.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Explicit pool-width override set by [`configure_pool_threads`]
/// (`0` = unset).
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Whether the worker set has been spawned (after which the spawned width
/// is pinned for the life of the process).
static POOL_SPAWNED: AtomicBool = AtomicBool::new(false);
/// Hard cap on any requested width — far above a sane kernel fan-out.
const MAX_POOL_THREADS: usize = 64;

/// The default pool width when nothing overrides it: `UAE_POOL_THREADS`
/// from the environment, else `min(cores, 8)`. Resolved once — the value
/// sits on the per-matmul dispatch path.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("UAE_POOL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(|n| n.min(MAX_POOL_THREADS))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8)
            })
    })
}

/// Number of threads `parallel_for` spreads work across (workers + the
/// participating caller). Override order: [`configure_pool_threads`],
/// then the `UAE_POOL_THREADS` environment variable, then
/// `min(cores, 8)`.
pub fn pool_threads() -> usize {
    match CONFIGURED_THREADS.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// Cap the kernel pool at `n` threads (clamped to `[1, 64]`). The serving
/// front-end calls this before its first estimate so that
/// `batch executors × pool threads` does not oversubscribe the machine —
/// each executor thread participates in its own pool jobs, so `n = 1`
/// degenerates every kernel to an inline loop on the executor itself.
///
/// Returns `true` when the setting takes full effect (the worker set has
/// not been spawned yet). After the first pool use the number of live
/// workers is pinned; a later call still changes how many *chunks* kernels
/// split into (correct but no longer matched to the worker count), and
/// `false` is returned so callers can warn.
pub fn configure_pool_threads(n: usize) -> bool {
    CONFIGURED_THREADS.store(n.clamp(1, MAX_POOL_THREADS), Ordering::SeqCst);
    !POOL_SPAWNED.load(Ordering::SeqCst)
}

/// Workers currently alive (armed and not unwound). Zero until the pool is
/// first used, then `pool_threads() - 1` in steady state.
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
/// Workers respawned after dying on a panic.
static RESPAWNS: AtomicUsize = AtomicUsize::new(0);
/// Pending injected worker deaths (see [`inject_worker_panic`]).
static KILL_REQUESTS: AtomicUsize = AtomicUsize::new(0);
/// Respawn budget: a backstop against a pathological kill loop burning OS
/// threads forever, far above anything a fault drill requests.
const MAX_RESPAWNS: usize = 1024;

/// Workers currently alive (0 until the pool's first use).
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// Total workers respawned after panic-deaths since process start.
pub fn respawn_count() -> usize {
    RESPAWNS.load(Ordering::SeqCst)
}

/// Deterministic fault injection for robustness tests: the next `n`
/// workers to look at the queue panic (outside the queue lock, so the
/// queue mutex is never poisoned) instead of taking a job, exercising the
/// respawn path. Never used by production code.
#[doc(hidden)]
pub fn inject_worker_panic(n: usize) {
    KILL_REQUESTS.fetch_add(n, Ordering::SeqCst);
    injector().ready.notify_all();
}

/// Atomically claim one pending kill request, if any.
fn claim_kill() -> bool {
    KILL_REQUESTS.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| k.checked_sub(1)).is_ok()
}

/// Keeps [`LIVE_WORKERS`] honest and respawns the worker if it dies
/// unwinding. Spawning from a `Drop` impl during a panic is safe here:
/// `spawn_worker` never panics (spawn failure is tolerated — the pool
/// shrinks but the participating caller keeps every job completing).
struct RespawnGuard;

impl RespawnGuard {
    fn arm() -> Self {
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        RespawnGuard
    }
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() {
            let n = RESPAWNS.fetch_add(1, Ordering::SeqCst);
            if n < MAX_RESPAWNS {
                spawn_worker(format!("uae-pool-r{n}"));
            }
        }
    }
}

/// Spawn one detached pool worker; failure leaves the pool smaller but
/// functional (the caller always participates in every job).
fn spawn_worker(name: String) {
    let _ = std::thread::Builder::new().name(name).spawn(worker_loop);
}

/// A type-erased parallel-for job. `func` points at a caller-owned closure;
/// the caller guarantees it outlives the job by blocking on [`Job::wait`].
struct Job {
    /// `&dyn Fn(usize)` with its lifetime erased.
    func: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Total number of indices.
    total: usize,
    /// Indices not yet finished, guarded for the completion latch.
    remaining: Mutex<usize>,
    /// Signaled when `remaining` reaches zero.
    done: Condvar,
    /// Set when any index panicked.
    panicked: AtomicBool,
}

// SAFETY: `func` is only dereferenced between submission and latch
// release, during which the caller keeps the closure alive; the closure
// itself is `Sync`, so shared calls from several workers are allowed.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run indices until the job is exhausted.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // SAFETY: `i < total`, so the caller is still blocked in
            // `wait` and the closure is alive.
            let func = unsafe { &*self.func };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(i)));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            let mut remaining = self.remaining.lock().expect("pool latch");
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Block until every index has finished.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("pool latch");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("pool latch");
        }
    }
}

/// The shared injector queue workers sleep on.
struct Injector {
    queue: Mutex<VecDeque<Arc<Job>>>,
    ready: Condvar,
}

fn injector() -> &'static Injector {
    static POOL: OnceLock<Injector> = OnceLock::new();
    POOL.get_or_init(|| {
        let inj = Injector { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() };
        // The caller always participates, so spawn one fewer worker than
        // the target width. On a single-core machine this spawns nothing
        // and `parallel_for` degenerates to an inline loop.
        POOL_SPAWNED.store(true, Ordering::SeqCst);
        for i in 0..pool_threads().saturating_sub(1) {
            spawn_worker(format!("uae-pool-{i}"));
        }
        inj
    })
}

fn worker_loop() {
    // Armed before the first job: if this worker dies unwinding, the guard
    // decrements the live count and spawns a replacement.
    let _guard = RespawnGuard::arm();
    let inj = injector();
    loop {
        let job = {
            let mut queue = inj.queue.lock().expect("pool queue");
            loop {
                if claim_kill() {
                    // Injected death. Drop the queue lock *before*
                    // panicking — unwinding while holding it would poison
                    // the mutex and take the whole pool down. A worker
                    // dying before claiming any index is harmless: the
                    // participating caller drains every job to completion.
                    drop(queue);
                    panic!("uae-pool: injected worker death (fault plan)");
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inj.ready.wait(queue).expect("pool queue");
            }
        };
        job.drain();
    }
}

/// Run `f(i)` for every `i in 0..n`, spread across the persistent pool.
/// Blocks until all indices complete; panics (on the caller) if any index
/// panicked. `n` is expected to be small — a handful of chunks, not one
/// call per element.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    match n {
        0 => return,
        1 => {
            f(0);
            return;
        }
        _ => {}
    }
    let workers = pool_threads() - 1;
    if workers == 0 {
        // Single-core: no pool threads exist; run inline.
        for i in 0..n {
            f(i);
        }
        return;
    }
    let erased: &(dyn Fn(usize) + Sync) = &f;
    let job = Arc::new(Job {
        // SAFETY: lifetime erasure; `wait` below outlives every deref.
        func: unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(erased)
        },
        next: AtomicUsize::new(0),
        total: n,
        remaining: Mutex::new(n),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let inj = injector();
    {
        let mut queue = inj.queue.lock().expect("pool queue");
        // One queue entry per helper that could usefully join; each entry
        // is just a handle — indices are claimed from the shared counter.
        for _ in 0..workers.min(n - 1) {
            queue.push_back(Arc::clone(&job));
        }
    }
    inj.ready.notify_all();
    job.drain();
    job.wait();
    if job.panicked.load(Ordering::Relaxed) {
        panic!("uae-pool job panicked");
    }
}

/// Run `f(i)` for `i in 0..n` and collect the results in index order.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = SendPtr(out.as_mut_ptr());
    parallel_for(n, |i| {
        let slot = slots;
        // SAFETY: each index is claimed exactly once, so writes are
        // disjoint; the vec outlives `parallel_for`, which blocks.
        unsafe { *slot.0.add(i) = Some(f(i)) };
    });
    out.into_iter().map(|v| v.expect("pool slot filled")).collect()
}

/// Raw-pointer wrapper for disjoint per-index writes from pool workers.
pub(crate) struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: users of `SendPtr` uphold one-writer-per-disjoint-region.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_once() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "n={n}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn nested_parallel_for_completes() {
        let total = AtomicU64::new(0);
        parallel_for(4, |_| {
            parallel_for(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (0..8).sum::<u64>());
    }

    #[test]
    fn borrows_stack_data() {
        let data: Vec<u64> = (0..1024).collect();
        let sums = parallel_map(8, |c| data[c * 128..(c + 1) * 128].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), (0..1024).sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // Pool stays usable afterwards.
        let out = parallel_map(8, |i| i);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn injected_worker_death_respawns() {
        // Warm the pool so every worker is armed.
        parallel_for(16, |_| {});
        let full = pool_threads().saturating_sub(1);
        if full == 0 {
            return; // single-core: no workers exist, nothing to kill
        }
        // Wait for all initial workers to come up (spawns are async).
        for _ in 0..1000 {
            if live_workers() >= full {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let before = respawn_count();
        // The victim's panic backtrace on stderr is expected noise.
        inject_worker_panic(1);
        for _ in 0..1000 {
            if respawn_count() > before && live_workers() >= full {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(respawn_count() > before, "no respawn observed after injected death");
        assert!(
            live_workers() >= full,
            "pool below strength after respawn: {} < {full}",
            live_workers()
        );
        // The pool stays fully usable and correct.
        for _ in 0..4 {
            let out = parallel_map(64, |i| i * 2);
            assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i));
        }
    }
}
