//! Inference-only int8 quantization.
//!
//! Weights are quantized **per output column** with symmetric scales
//! (`scale_j = max_k |w[k][j]| / 127`) at snapshot time; activations are
//! quantized **per row** with a dynamic symmetric scale right before each
//! quantized matmul. Products accumulate in `i32` — exactly, since
//! `127 * 127 * K` stays far below `i32::MAX` for any realistic reduction
//! depth — and are dequantized once per output element:
//! `out[j] = acc as f32 * (a_scale * col_scale[j])`, so a quantized matmul
//! is deterministic and **bit-identical across scalar and AVX2 backends**
//! (the integer part is exact; the dequant multiplies are performed in the
//! same order per element).
//!
//! Storage layout: values are widened to `i16` and packed in interleaved
//! k-pair panels, `panel[(p * n + j) * 2 + {0, 1}] = q[2p][j], q[2p+1][j]`
//! (odd trailing k zero-padded). One AVX2 `madd_epi16` then computes 16
//! multiply-accumulates per instruction: a broadcast activation pair times
//! 8 adjacent weight-column pairs → 8 exact `i32` partial sums. The `u8×i8
//! maddubs` variant was rejected: its intermediate `i16` sums saturate at
//! `255 * 127 * 2 > i16::MAX`, breaking exactness.
//!
//! Training never sees any of this: quantized panels live only in inference
//! snapshots (`RawModel`), so checkpoint bytes are unchanged whether
//! quantization is on or off.

use crate::simd::{self, Backend};
use crate::tensor::Tensor;

/// Numeric mode of the inference forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full-precision f32 forwards (the default).
    #[default]
    F32,
    /// Int8 weights + dynamically quantized activations, f32 epilogues.
    Int8,
}

/// An int8-quantized weight matrix in interleaved k-pair panel layout.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    /// Reduction depth actually packed (rows of the source matrix below
    /// `k_limit`; the rest are structurally zero under the MADE mask).
    k: usize,
    /// Output columns.
    n: usize,
    /// `ceil(k / 2)` interleaved row pairs.
    pairs: usize,
    /// `pairs * n * 2` i16 values, `panel[(p*n + j)*2 + s] = q[2p+s][j]`.
    panel: Vec<i16>,
    /// Per-column symmetric dequant scales (`max|w_col| / 127`).
    col_scale: Vec<f32>,
    /// Per-8-column-group pair limits: the columns `8g..8g+8` only ever
    /// read pairs `0..group_pairs[g]` — every later pair is structurally
    /// zero in all of the group's columns under the packed MADE mask
    /// (zero-prefix rows, see [`crate::simd::matmul_row`]'s `starts`
    /// contract). Dense matrices carry `pairs` everywhere. Kernels may
    /// over-read up to the block-wide maximum: the extra products are
    /// integer zeros, so results stay bit-identical.
    group_pairs: Vec<u32>,
}

impl QuantMatrix {
    /// Quantize rows `0..k_limit` of `w` (rows at or past `k_limit` must be
    /// zero — the caller prunes them via the MADE degree structure).
    pub fn quantize(w: &Tensor, k_limit: usize) -> Self {
        Self::quantize_packed(w, k_limit, None)
    }

    /// [`QuantMatrix::quantize`] with the packed-mask `starts` contract:
    /// row `k` of `w` is zero below column `starts[k]`. The panel stores
    /// the same values either way; `starts` only tightens the per-group
    /// reduction limits so the integer kernels skip the structurally-zero
    /// prefix exactly like the f32 path does.
    pub fn quantize_packed(w: &Tensor, k_limit: usize, starts: Option<&[u32]>) -> Self {
        let n = w.cols();
        let k = k_limit.min(w.rows());
        let pairs = k.div_ceil(2);
        let mut col_scale = vec![0.0f32; n];
        for r in 0..k {
            for (j, &v) in w.row(r).iter().enumerate() {
                let a = v.abs();
                if a > col_scale[j] {
                    col_scale[j] = a;
                }
            }
        }
        let mut panel = vec![0i16; pairs * n * 2];
        for r in 0..k {
            let (p, s) = (r / 2, r % 2);
            for (j, &v) in w.row(r).iter().enumerate() {
                let amax = col_scale[j];
                if amax > 0.0 {
                    panel[(p * n + j) * 2 + s] = quantize_value(v, 127.0 / amax);
                }
            }
        }
        // Convert per-column maxima into dequant scales only once the panel
        // is filled.
        for s in col_scale.iter_mut() {
            *s /= 127.0;
        }
        let groups = n.div_ceil(8).max(1);
        let group_pairs = match starts {
            None => vec![pairs as u32; groups],
            Some(st) => {
                debug_assert!(st.len() >= k);
                (0..groups)
                    .map(|g| {
                        let j_hi = (8 * g + 7).min(n.saturating_sub(1));
                        let live_k =
                            (0..k).rev().find(|&r| st[r] as usize <= j_hi).map_or(0, |r| r + 1);
                        (live_k.div_ceil(2)) as u32
                    })
                    .collect()
            }
        };
        QuantMatrix { k, n, pairs, panel, col_scale, group_pairs }
    }

    /// Reduction depth the panel covers.
    pub fn k_limit(&self) -> usize {
        self.k
    }

    /// Output columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Activation buffer length [`qmatmul_row`] expects (`2 * pairs`,
    /// zero-padded when `k` is odd).
    pub fn padded_k(&self) -> usize {
        self.pairs * 2
    }
}

#[inline]
fn quantize_value(v: f32, inv_scale: f32) -> i16 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i16
}

/// Quantize an activation row prefix into `q` (length `padded_k`, trailing
/// pad zeroed) and return the symmetric dequant scale `max|x| / 127`.
/// An all-zero (or non-finite-free degenerate) row returns scale 0 with an
/// all-zero `q`, making the downstream matmul contribute exactly 0.
/// Backends produce bit-identical `q` and scale (asserted by the kernel
/// property suite).
pub fn quantize_row(x: &[f32], q: &mut [i16]) -> f32 {
    quantize_row_with(simd::backend(), x, q)
}

/// [`quantize_row`] against an explicit backend (oracle tests / benches).
pub fn quantize_row_with(be: Backend, x: &[f32], q: &mut [i16]) -> f32 {
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only selectable after runtime feature detection.
        Backend::Avx2 if x.len() >= 16 => unsafe { quantize_row_avx2(x, q) },
        _ => quantize_row_scalar(x, q),
    }
}

fn quantize_row_scalar(x: &[f32], q: &mut [i16]) -> f32 {
    let mut amax = 0.0f32;
    for &v in x {
        let a = v.abs();
        if a > amax {
            amax = a;
        }
    }
    if amax == 0.0 || !amax.is_finite() {
        q.fill(0);
        return 0.0;
    }
    let inv = 127.0 / amax;
    for (o, &v) in q.iter_mut().zip(x) {
        *o = quantize_value(v, inv);
    }
    q[x.len()..].fill(0);
    amax / 127.0
}

/// Largest f32 strictly below 0.5. `trunc(y + copysign(HALF_UP, y))`
/// reproduces round-half-away-from-zero for every finite f32 — the same
/// expansion LLVM legalizes `llvm.round.f32` into — which makes the AVX2
/// quantizer bit-identical to the scalar `f32::round` path (the kernel
/// property suite sweeps the tie neighborhoods to hold this claim).
#[cfg(target_arch = "x86_64")]
const HALF_UP: f32 = 0.499_999_97;

/// # Safety
/// avx2+fma available; `q.len() >= x.len()`; `x.len() >= 16`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn quantize_row_avx2(x: &[f32], q: &mut [i16]) -> f32 {
    use std::arch::x86_64::*;
    let n = x.len();
    let xp = x.as_ptr();
    let sign_mask = _mm256_set1_ps(-0.0);
    // Abs-max scan with the scalar `if a > amax` NaN semantics: the
    // ordered-greater compare is false for NaN lanes, so they are ignored
    // exactly like the scalar loop ignores them.
    let mut vmax = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let a = _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(xp.add(i)));
        let gt = _mm256_cmp_ps(a, vmax, _CMP_GT_OQ);
        vmax = _mm256_blendv_ps(vmax, a, gt);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
    let mut amax = 0.0f32;
    for &l in &lanes {
        if l > amax {
            amax = l;
        }
    }
    while i < n {
        let a = (*xp.add(i)).abs();
        if a > amax {
            amax = a;
        }
        i += 1;
    }
    if amax == 0.0 || !amax.is_finite() {
        q.fill(0);
        return 0.0;
    }
    let inv = 127.0 / amax;
    let invv = _mm256_set1_ps(inv);
    let half = _mm256_set1_ps(HALF_UP);
    let lim = _mm256_set1_ps(127.0);
    let nlim = _mm256_set1_ps(-127.0);
    let qp = q.as_mut_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        let q0 = quant8(_mm256_loadu_ps(xp.add(i)), invv, sign_mask, half, lim, nlim);
        let q1 = quant8(_mm256_loadu_ps(xp.add(i + 8)), invv, sign_mask, half, lim, nlim);
        // packs interleaves 128-bit halves; permute restores lane order.
        let packed = _mm256_packs_epi32(q0, q1);
        let fixed = _mm256_permute4x64_epi64(packed, 0b1101_1000);
        _mm256_storeu_si256(qp.add(i) as _, fixed);
        i += 16;
    }
    while i < n {
        *q.get_unchecked_mut(i) = quantize_value(*xp.add(i), inv);
        i += 1;
    }
    q[n..].fill(0);
    amax / 127.0
}

/// Quantize 8 lanes: `clamp(round_half_away(v * inv), -127, 127)` as i32.
///
/// # Safety
/// avx2+fma available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[inline]
unsafe fn quant8(
    v: std::arch::x86_64::__m256,
    invv: std::arch::x86_64::__m256,
    sign_mask: std::arch::x86_64::__m256,
    half: std::arch::x86_64::__m256,
    lim: std::arch::x86_64::__m256,
    nlim: std::arch::x86_64::__m256,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let y = _mm256_mul_ps(v, invv);
    // NaN lanes -> +0.0, matching the scalar `NaN as i16 == 0` cast.
    let y = _mm256_and_ps(y, _mm256_cmp_ps(y, y, _CMP_ORD_Q));
    let cs = _mm256_or_ps(_mm256_and_ps(y, sign_mask), half);
    let t = _mm256_round_ps(_mm256_add_ps(y, cs), _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    let t = _mm256_max_ps(_mm256_min_ps(t, lim), nlim);
    _mm256_cvtps_epi32(t)
}

/// `out[j] = (sum_k qa[k] * q[k][j]) * a_scale * col_scale[j]` over the
/// panel's packed reduction depth. `qa` must be `m.padded_k()` long (use
/// [`quantize_row`]). Integer accumulation is exact, so every backend
/// produces bit-identical output.
#[inline]
pub fn qmatmul_row(qa: &[i16], m: &QuantMatrix, a_scale: f32, out: &mut [f32]) {
    qmatmul_row_with(simd::backend(), qa, m, a_scale, out)
}

/// [`qmatmul_row`] against an explicit backend (oracle tests / benches).
pub fn qmatmul_row_with(be: Backend, qa: &[i16], m: &QuantMatrix, a_scale: f32, out: &mut [f32]) {
    debug_assert_eq!(qa.len(), m.pairs * 2);
    debug_assert_eq!(out.len(), m.n);
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backend is only selected after runtime feature
        // detection confirmed avx2+fma (see `simd::set_backend`).
        Backend::Avx2 => NZ_PAIRS.with(|cell| {
            let mut nz = cell.borrow_mut();
            compact_nonzero_pairs(qa, m.pairs, &mut nz);
            unsafe {
                qmatmul_row_avx2(&nz, &m.panel, m.n, &m.group_pairs, a_scale, &m.col_scale, out)
            }
        }),
        _ => qmatmul_row_scalar(qa, m, a_scale, out),
    }
}

#[cfg(target_arch = "x86_64")]
std::thread_local! {
    /// Reusable scratch for the per-row compacted activation-pair list, so
    /// the quantized hot path stays allocation-free after warm-up.
    static NZ_PAIRS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Compact the quantized activation row into its nonzero k-pairs, encoded
/// `(pair_index << 32) | (a1 << 16 | a0)` in ascending pair order. Post-relu
/// activations are roughly half zeros, so skipping whole pairs here — once
/// per row, branchlessly — beats testing every pair inside every column
/// block of the panel sweep (where the test mispredicts constantly).
#[cfg(target_arch = "x86_64")]
fn compact_nonzero_pairs(qa: &[i16], pairs: usize, nz: &mut Vec<u64>) {
    nz.clear();
    nz.resize(pairs, 0);
    let mut len = 0usize;
    for p in 0..pairs {
        let a0 = qa[2 * p] as u16 as u32;
        let a1 = qa[2 * p + 1] as u16 as u32;
        let packed = (a1 << 16) | a0;
        nz[len] = ((p as u64) << 32) | packed as u64;
        len += (packed != 0) as usize;
    }
    nz.truncate(len);
}

fn qmatmul_row_scalar(qa: &[i16], m: &QuantMatrix, a_scale: f32, out: &mut [f32]) {
    let n = m.n;
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0i32;
        for p in 0..m.group_pairs[j / 8] as usize {
            let a0 = qa[2 * p] as i32;
            let a1 = qa[2 * p + 1] as i32;
            if a0 == 0 && a1 == 0 {
                continue;
            }
            let base = (p * n + j) * 2;
            acc += a0 * m.panel[base] as i32 + a1 * m.panel[base + 1] as i32;
        }
        *o = acc as f32 * (a_scale * m.col_scale[j]);
    }
}

/// # Safety
/// avx2+fma available; `panel.len() == pairs * n * 2`; `nz` is an ascending
/// compacted pair list from [`compact_nonzero_pairs`] whose pair indices all
/// lie below `pairs`; `out.len() == n == col_scale.len()`;
/// `group_pairs.len() == max(1, ceil(n / 8))` with every entry `<= pairs`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn qmatmul_row_avx2(
    nz: &[u64],
    panel: &[i16],
    n: usize,
    group_pairs: &[u32],
    a_scale: f32,
    col_scale: &[f32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let pp = panel.as_ptr();
    let nzp = nz.as_ptr();
    let nzn = nz.len();
    let mut j = 0usize;
    // 32 columns per iteration: 4 accumulator vectors of 8 i32 lanes. The
    // reduction walks the compacted nonzero-pair list — branch-free except
    // for the group-limit cutoff, which fires once per block because the
    // list is sorted by pair index. It runs to the widest of the 4 groups'
    // limits: the extra pairs of tighter groups are structurally zero
    // there, and integer zeros keep the result bit-identical to the
    // per-group scalar loop.
    while j + 32 <= n {
        let g = j / 8;
        let plim =
            group_pairs[g].max(group_pairs[g + 1]).max(group_pairs[g + 2]).max(group_pairs[g + 3])
                as u64;
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i < nzn {
            let e = *nzp.add(i);
            let p = (e >> 32) as usize;
            if p as u64 >= plim {
                break;
            }
            let bc = _mm256_set1_epi32(e as u32 as i32);
            let base = pp.add((p * n + j) * 2);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(bc, _mm256_loadu_si256(base as _)));
            acc1 = _mm256_add_epi32(
                acc1,
                _mm256_madd_epi16(bc, _mm256_loadu_si256(base.add(16) as _)),
            );
            acc2 = _mm256_add_epi32(
                acc2,
                _mm256_madd_epi16(bc, _mm256_loadu_si256(base.add(32) as _)),
            );
            acc3 = _mm256_add_epi32(
                acc3,
                _mm256_madd_epi16(bc, _mm256_loadu_si256(base.add(48) as _)),
            );
            i += 1;
        }
        let av = _mm256_set1_ps(a_scale);
        for (t, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
            let jj = j + t * 8;
            let sc = _mm256_mul_ps(av, _mm256_loadu_ps(col_scale.as_ptr().add(jj)));
            let v = _mm256_mul_ps(_mm256_cvtepi32_ps(acc), sc);
            _mm256_storeu_ps(out.as_mut_ptr().add(jj), v);
        }
        j += 32;
    }
    // 8 columns per iteration.
    while j + 8 <= n {
        let plim = group_pairs[j / 8] as u64;
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i < nzn {
            let e = *nzp.add(i);
            let p = (e >> 32) as usize;
            if p as u64 >= plim {
                break;
            }
            let bc = _mm256_set1_epi32(e as u32 as i32);
            let base = pp.add((p * n + j) * 2);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(bc, _mm256_loadu_si256(base as _)));
            i += 1;
        }
        let sc = _mm256_mul_ps(_mm256_set1_ps(a_scale), _mm256_loadu_ps(col_scale.as_ptr().add(j)));
        _mm256_storeu_ps(out.as_mut_ptr().add(j), _mm256_mul_ps(_mm256_cvtepi32_ps(acc), sc));
        j += 8;
    }
    // Scalar tail — same exact integer math, so results stay bit-identical.
    while j < n {
        let plim = *group_pairs.get_unchecked(j / 8) as u64;
        let mut acc = 0i32;
        for i in 0..nzn {
            let e = *nzp.add(i);
            let p = (e >> 32) as usize;
            if p as u64 >= plim {
                break;
            }
            let a0 = e as u32 as u16 as i16 as i32;
            let a1 = (e as u32 >> 16) as u16 as i16 as i32;
            let base = (p * n + j) * 2;
            acc +=
                a0 * *panel.get_unchecked(base) as i32 + a1 * *panel.get_unchecked(base + 1) as i32;
        }
        *out.get_unchecked_mut(j) = acc as f32 * (a_scale * *col_scale.get_unchecked(j));
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                lo + (hi - lo) * ((s >> 40) as f32 / (1u64 << 24) as f32)
            })
            .collect()
    }

    fn avx2_available() -> bool {
        simd::detect_backend() == Backend::Avx2
    }

    /// f32 reference of the fully dequantized product, for error bounds.
    fn f32_reference(a: &[f32], w: &Tensor, k: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; w.cols()];
        for (r, &av) in a.iter().enumerate().take(k) {
            for (o, &wv) in out.iter_mut().zip(w.row(r)) {
                *o += av * wv;
            }
        }
        out
    }

    #[test]
    fn quantized_matmul_is_close_and_backend_exact() {
        for &(k, n) in &[(1usize, 1usize), (3, 7), (16, 64), (127, 128), (128, 131), (5, 40)] {
            let w = Tensor::from_vec(k, n, pseudo(7 * k as u64 + n as u64, k * n, -1.2, 1.2));
            let a = pseudo(k as u64 + 100, k, -2.0, 2.0);
            let m = QuantMatrix::quantize(&w, k);
            let mut qa = vec![0i16; m.padded_k()];
            let a_scale = quantize_row(&a, &mut qa);

            let mut scalar = vec![0.0f32; n];
            qmatmul_row_with(Backend::Exact, &qa, &m, a_scale, &mut scalar);

            // Error bound: each term carries two symmetric int8 roundings
            // (activation err <= a_scale/2 times |w|, weight err <=
            // col_scale/2 times |a|), accumulated over k terms:
            // ~ k * amax * wmax / 127.
            let reference = f32_reference(&a, &w, k);
            let amax = a.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let tol = 1e-6 + (k as f32) * amax * 1.3 / 127.0;
            for (r, s) in reference.iter().zip(&scalar) {
                assert!((r - s).abs() <= tol, "({k}x{n}) quant err: {r} vs {s}, tol {tol}");
            }

            if avx2_available() {
                let mut v = vec![0.0f32; n];
                qmatmul_row_with(Backend::Avx2, &qa, &m, a_scale, &mut v);
                assert_eq!(scalar, v, "quantized matmul must be bit-exact across backends");
            }
        }
    }

    #[test]
    fn odd_k_pads_with_zero() {
        let w = Tensor::from_vec(3, 4, pseudo(11, 12, -1.0, 1.0));
        let m = QuantMatrix::quantize(&w, 3);
        assert_eq!(m.padded_k(), 4);
        let a = pseudo(12, 3, -1.0, 1.0);
        let mut qa = vec![7i16; m.padded_k()]; // trailing garbage must be overwritten
        let a_scale = quantize_row(&a, &mut qa);
        assert_eq!(qa[3], 0, "pad lane must be zeroed");
        let mut out = vec![0.0f32; 4];
        qmatmul_row_with(Backend::Exact, &qa, &m, a_scale, &mut out);
        let reference = f32_reference(&a, &w, 3);
        for (r, s) in reference.iter().zip(&out) {
            assert!((r - s).abs() < 0.1);
        }
    }

    #[test]
    fn zero_row_and_zero_columns() {
        let mut w = Tensor::zeros(4, 3);
        w.set(0, 1, 0.5);
        w.set(3, 1, -0.25);
        let m = QuantMatrix::quantize(&w, 4);
        // Column 0 and 2 are all-zero: scale 0, quantized values 0.
        let a = [1.0f32, -1.0, 2.0, 0.5];
        let mut qa = vec![0i16; m.padded_k()];
        let a_scale = quantize_row(&a, &mut qa);
        let mut out = vec![0.0f32; 3];
        qmatmul_row_with(Backend::Exact, &qa, &m, a_scale, &mut out);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[2], 0.0);
        assert!((out[1] - (0.5 - 0.25 * 0.5)).abs() < 0.02);

        // All-zero activation row: scale 0, exact zero output.
        let mut qz = vec![0i16; m.padded_k()];
        let z_scale = quantize_row(&[0.0; 4], &mut qz);
        assert_eq!(z_scale, 0.0);
        let mut outz = vec![1.0f32; 3];
        qmatmul_row_with(Backend::Exact, &qz, &m, z_scale, &mut outz);
        assert_eq!(outz, vec![0.0; 3]);
    }

    #[test]
    fn packed_starts_match_dense_bit_for_bit() {
        // Rows zero below their start column (the packed MADE layout):
        // the per-group limits must change nothing observable, on either
        // backend, including when a 32-column block spans mixed limits.
        for &(k, n) in &[(16usize, 40usize), (33, 64), (7, 9), (128, 128)] {
            let starts: Vec<u32> = (0..k).map(|r| ((r * n) / k) as u32).collect();
            let mut data = pseudo(3 * k as u64 + n as u64, k * n, -1.5, 1.5);
            for r in 0..k {
                for j in 0..starts[r] as usize {
                    data[r * n + j] = 0.0;
                }
            }
            let w = Tensor::from_vec(k, n, data);
            let dense = QuantMatrix::quantize(&w, k);
            let packed = QuantMatrix::quantize_packed(&w, k, Some(&starts));
            assert!(
                packed.group_pairs.iter().zip(&dense.group_pairs).any(|(p, d)| p < d) || n < 16,
                "starts produced no pruning at ({k}x{n})"
            );

            let a = pseudo(k as u64 + 5, k, -2.0, 2.0);
            let mut qa = vec![0i16; dense.padded_k()];
            let a_scale = quantize_row(&a, &mut qa);
            let mut want = vec![0.0f32; n];
            qmatmul_row_with(Backend::Exact, &qa, &dense, a_scale, &mut want);
            for be in [Backend::Exact, Backend::Avx2] {
                if be == Backend::Avx2 && !avx2_available() {
                    continue;
                }
                let mut got = vec![0.0f32; n];
                qmatmul_row_with(be, &qa, &packed, a_scale, &mut got);
                assert_eq!(got, want, "({k}x{n}) on {be:?}");
            }
        }
    }

    #[test]
    fn k_limit_prunes_masked_rows() {
        // Rows >= k_limit are structurally zero in MADE-masked heads; the
        // panel must simply not include them.
        let mut data = pseudo(21, 6 * 4, -1.0, 1.0);
        for v in data.iter_mut().skip(3 * 4) {
            *v = 0.0;
        }
        let w = Tensor::from_vec(6, 4, data);
        let pruned = QuantMatrix::quantize(&w, 3);
        let full = QuantMatrix::quantize(&w, 6);
        assert_eq!(pruned.k_limit(), 3);
        let a = pseudo(22, 6, -1.0, 1.0);
        let mut qa_p = vec![0i16; pruned.padded_k()];
        let s_p = quantize_row(&a[..3], &mut qa_p);
        let mut qa_f = vec![0i16; full.padded_k()];
        let s_f = quantize_row(&a, &mut qa_f);
        let mut out_p = vec![0.0f32; 4];
        let mut out_f = vec![0.0f32; 4];
        qmatmul_row_with(Backend::Exact, &qa_p, &pruned, s_p, &mut out_p);
        qmatmul_row_with(Backend::Exact, &qa_f, &full, s_f, &mut out_f);
        // Same math modulo the (different) activation scale granularity.
        for (p, f) in out_p.iter().zip(&out_f) {
            assert!((p - f).abs() < 0.05, "{p} vs {f}");
        }
    }
}
