//! Random initialization and the Gumbel noise used by the Gumbel-Softmax
//! trick (paper Eq. 9).

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::tensor::Tensor;

/// A deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Kaiming/He-style uniform initialization for a `fan_in x fan_out` weight
/// matrix feeding ReLU units.
pub fn he_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.random_range(-bound..bound)).collect();
    Tensor::from_vec(fan_in, fan_out, data)
}

/// Xavier/Glorot uniform initialization.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.random_range(-bound..bound)).collect();
    Tensor::from_vec(fan_in, fan_out, data)
}

/// A single standard Gumbel(0, 1) sample: `-log(-log(u))`, `u ~ U(0, 1)`.
#[inline]
pub fn gumbel_sample(rng: &mut impl Rng) -> f32 {
    // Clamp away from 0 and 1 so the double log stays finite.
    let u: f32 = rng.random_range(1e-10f32..1.0);
    -(-u.ln()).ln()
}

/// A `rows x cols` tensor of i.i.d. Gumbel(0, 1) noise (paper Alg. 1, step 2).
pub fn gumbel_noise(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols).map(|_| gumbel_sample(rng)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Fill an already-sized tensor with i.i.d. Gumbel(0, 1) noise in place.
/// Draws samples in the same row-major order as [`gumbel_noise`].
pub fn gumbel_fill(rng: &mut impl Rng, t: &mut Tensor) {
    for v in t.data_mut() {
        *v = gumbel_sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = gumbel_noise(&mut seeded_rng(7), 4, 4);
        let b = gumbel_noise(&mut seeded_rng(7), 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn gumbel_mean_is_euler_mascheroni() {
        // E[Gumbel(0,1)] = γ ≈ 0.5772.
        let mut rng = seeded_rng(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| gumbel_sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5772).abs() < 0.02, "gumbel mean {mean}");
    }

    #[test]
    fn gumbel_argmax_matches_categorical_probabilities() {
        // The Gumbel-max trick: argmax(log p + g) ~ Categorical(p).
        let probs = [0.6f32, 0.3, 0.1];
        let mut rng = seeded_rng(3);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            let mut best = 0;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &p) in probs.iter().enumerate() {
                let v = p.ln() + gumbel_sample(&mut rng);
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            counts[best] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let freq = counts[i] as f32 / n as f32;
            assert!((freq - p).abs() < 0.02, "class {i}: freq {freq} vs p {p}");
        }
    }

    #[test]
    fn init_bounds() {
        let mut rng = seeded_rng(1);
        let w = he_uniform(&mut rng, 64, 32);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
        assert_eq!(w.shape(), (64, 32));
    }
}
