//! Runtime-dispatched SIMD kernels for the inference hot path.
//!
//! Three backends implement the same row-level contracts:
//!
//! * [`Backend::Exact`] — the reference scalar loops, numerically identical
//!   to the pre-SIMD engine. Selected by `UAE_FORCE_SCALAR=1`; the bit-exact
//!   seq/batch and checkpoint-resume guarantees are stated against it.
//! * [`Backend::Portable`] — 8-lane-unrolled scalar code with no
//!   target-specific intrinsics. For the element-wise kernels (axpy,
//!   bias/ReLU epilogues) the unrolling does not reorder any per-element
//!   arithmetic, so it is bit-identical to `Exact`; it exists so non-x86
//!   hosts still get ILP-friendly loops.
//! * [`Backend::Avx2`] — x86-64 `std::arch` AVX2 + FMA kernels, including a
//!   fused softmax built on a vectorized polynomial `exp`. FMA contraction
//!   and 8-way reduction trees reassociate sums, so this backend is held to
//!   an ULP/relative-error oracle bound instead of bit-exactness (see the
//!   tests here and `tests/simd_kernels.rs`).
//!
//! The backend is picked **once** at first use from `UAE_FORCE_SCALAR`, the
//! `UAE_SIMD` override (`scalar` | `portable` | `avx2`), and
//! `is_x86_feature_detected!`; benches flip it explicitly via
//! [`set_backend`] to build scalar → SIMD → int8 trajectories in one
//! process. Matrix-level dispatch lives in [`crate::tensor`]; model-level
//! packing (mask-aware column pruning) lives in `uae-core`, which feeds the
//! per-row `starts` offsets into [`matmul_row`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family services tensor ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Reference scalar loops — the deterministic baseline.
    Exact = 0,
    /// Unrolled portable loops (bit-identical to `Exact` on element-wise
    /// kernels; no intrinsics).
    Portable = 1,
    /// AVX2 + FMA intrinsics (x86-64 only, runtime-detected).
    Avx2 = 2,
}

const BACKEND_UNSET: u8 = u8::MAX;
static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

#[inline]
fn from_u8(v: u8) -> Backend {
    match v {
        0 => Backend::Exact,
        1 => Backend::Portable,
        _ => Backend::Avx2,
    }
}

/// The active backend, initializing it from the environment + CPU features
/// on first call.
#[inline]
pub fn backend() -> Backend {
    let v = BACKEND.load(Ordering::Relaxed);
    if v == BACKEND_UNSET {
        init_backend()
    } else {
        from_u8(v)
    }
}

#[cold]
fn init_backend() -> Backend {
    let b = detect_backend();
    BACKEND.store(b as u8, Ordering::Relaxed);
    b
}

/// What the environment + CPU would select, ignoring any [`set_backend`]
/// override already in effect.
pub fn detect_backend() -> Backend {
    if force_scalar() {
        return Backend::Exact;
    }
    match std::env::var("UAE_SIMD").ok().as_deref() {
        Some("scalar") | Some("exact") => return Backend::Exact,
        Some("portable") => return Backend::Portable,
        Some("avx2") => return clamp_to_available(Backend::Avx2),
        _ => {}
    }
    clamp_to_available(Backend::Avx2)
}

fn force_scalar() -> bool {
    match std::env::var("UAE_FORCE_SCALAR").ok().as_deref() {
        None | Some("") | Some("0") | Some("false") | Some("no") => false,
        Some(_) => true,
    }
}

/// Downgrade a requested backend to the best one this CPU supports.
fn clamp_to_available(b: Backend) -> Backend {
    if b == Backend::Avx2 && !avx2_available() {
        return Backend::Portable;
    }
    b
}

/// Whether this CPU supports the AVX2+FMA backend. Public so oracle tests
/// can skip (rather than silently downgrade) the AVX2 assertions.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Force a backend (downgraded if the CPU lacks it) and return the previous
/// selection. Bench/test-only: callers that hold model snapshots must
/// rebuild them afterwards, because snapshot weight *layout* depends on the
/// backend at snapshot time.
pub fn set_backend(b: Backend) -> Backend {
    let b = clamp_to_available(b);
    let prev = BACKEND.swap(b as u8, Ordering::Relaxed);
    if prev == BACKEND_UNSET {
        detect_backend()
    } else {
        from_u8(prev)
    }
}

/// Whether model snapshots should use the packed (degree-permuted,
/// column-pruned) weight layout. The `Exact` backend keeps the plain layout
/// so `UAE_FORCE_SCALAR=1` reproduces the pre-SIMD engine bit-for-bit.
pub fn packed_enabled() -> bool {
    backend() != Backend::Exact
}

// ---------------------------------------------------------------------------
// Row kernels (dispatching).
// ---------------------------------------------------------------------------

/// `out_row[j] += sum_k a_row[k] * b[k][j]` for a row-major `b` with `bcols`
/// columns, accumulating into `out_row` (callers zero it for a plain
/// matmul). When `starts` is given, row `k` of `b` is treated as zero below
/// column `starts[k]` — the packed-mask contract: the model layer permutes
/// hidden units by MADE degree so every masked weight row is zero on a
/// contiguous prefix, and the inner loop starts past it instead of testing
/// a zero-skip branch per element.
#[inline]
pub fn matmul_row(a_row: &[f32], b: &[f32], bcols: usize, starts: Option<&[u32]>, out: &mut [f32]) {
    matmul_row_with(backend(), a_row, b, bcols, starts, out)
}

/// [`matmul_row`] against an explicit backend (oracle tests / benches).
pub fn matmul_row_with(
    be: Backend,
    a_row: &[f32],
    b: &[f32],
    bcols: usize,
    starts: Option<&[u32]>,
    out: &mut [f32],
) {
    debug_assert!(a_row.len() * bcols <= b.len());
    debug_assert_eq!(out.len(), bcols);
    if let Some(st) = starts {
        debug_assert!(st.len() >= a_row.len());
    }
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only ever selected (or kept by `set_backend`)
        // when `is_x86_feature_detected!` confirmed avx2+fma.
        Backend::Avx2 => unsafe { avx2::matmul_row(a_row, b, bcols, starts, out) },
        Backend::Portable => {
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let s = starts.map_or(0, |st| st[k] as usize);
                axpy_unrolled(aik, &b[k * bcols + s..(k + 1) * bcols], &mut out[s..]);
            }
        }
        _ => {
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let s = starts.map_or(0, |st| st[k] as usize);
                let b_row = &b[k * bcols + s..(k + 1) * bcols];
                for (o, &bv) in out[s..].iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// 8-lane-unrolled `y += a * x`. Per-element arithmetic is unchanged, so
/// this is bit-identical to the reference loop.
fn axpy_unrolled(a: f32, x: &[f32], y: &mut [f32]) {
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact_mut(8);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        ys[0] += a * xs[0];
        ys[1] += a * xs[1];
        ys[2] += a * xs[2];
        ys[3] += a * xs[3];
        ys[4] += a * xs[4];
        ys[5] += a * xs[5];
        ys[6] += a * xs[6];
        ys[7] += a * xs[7];
    }
    for (o, &xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * xv;
    }
}

/// `out = x + bias`, one row.
#[inline]
pub fn add_bias_into_row(x: &[f32], bias: &[f32], out: &mut [f32]) {
    add_bias_into_row_with(backend(), x, bias, out)
}

/// [`add_bias_into_row`] against an explicit backend.
pub fn add_bias_into_row_with(be: Backend, x: &[f32], bias: &[f32], out: &mut [f32]) {
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime-verified avx2+fma (see matmul_row).
        Backend::Avx2 => unsafe { avx2::add_bias_into_row(x, bias, out) },
        _ => {
            for ((o, &xv), &bv) in out.iter_mut().zip(x).zip(bias) {
                *o = xv + bv;
            }
        }
    }
}

/// `row += bias`, one row.
#[inline]
pub fn add_bias_row(row: &mut [f32], bias: &[f32]) {
    add_bias_row_with(backend(), row, bias)
}

/// [`add_bias_row`] against an explicit backend.
pub fn add_bias_row_with(be: Backend, row: &mut [f32], bias: &[f32]) {
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime-verified avx2+fma (see matmul_row).
        Backend::Avx2 => unsafe { avx2::add_bias_row(row, bias) },
        _ => {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
    }
}

/// Fused `row = relu(row + bias)`, one row — the hidden-layer epilogue.
#[inline]
pub fn add_bias_relu_row(row: &mut [f32], bias: &[f32]) {
    add_bias_relu_row_with(backend(), row, bias)
}

/// [`add_bias_relu_row`] against an explicit backend.
pub fn add_bias_relu_row_with(be: Backend, row: &mut [f32], bias: &[f32]) {
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime-verified avx2+fma (see matmul_row).
        Backend::Avx2 => unsafe { avx2::add_bias_relu_row(row, bias) },
        _ => {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o = (*o + bv).max(0.0);
            }
        }
    }
}

/// Numerically stable softmax of one row, written into `dst` in a single
/// fused max/exp/normalize pass. A fully `-inf` row becomes uniform (the
/// model treats it as an impossible region).
#[inline]
pub fn softmax_into(src: &[f32], dst: &mut [f32]) {
    softmax_into_with(backend(), src, dst)
}

/// [`softmax_into`] against an explicit backend.
pub fn softmax_into_with(be: Backend, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime-verified avx2+fma; src/dst are
        // distinct &/&mut slices of equal length.
        Backend::Avx2 => unsafe {
            avx2::softmax(src.as_ptr(), dst.as_mut_ptr(), src.len());
        },
        _ => softmax_into_scalar(src, dst),
    }
}

/// In-place variant of [`softmax_into`]. Shares the same kernel per backend,
/// so `softmax_rows_into` and `softmax_rows_in_place` stay bit-identical.
#[inline]
pub fn softmax_slice(xs: &mut [f32]) {
    softmax_slice_with(backend(), xs)
}

/// [`softmax_slice`] against an explicit backend.
pub fn softmax_slice_with(be: Backend, xs: &mut [f32]) {
    match be {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies runtime-verified avx2+fma; the kernel reads
        // each element before overwriting it, so src == dst aliasing is fine.
        Backend::Avx2 => unsafe {
            avx2::softmax(xs.as_ptr(), xs.as_mut_ptr(), xs.len());
        },
        _ => {
            let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                let u = 1.0 / xs.len() as f32;
                xs.fill(u);
                return;
            }
            let mut sum = 0.0f32;
            for x in xs.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in xs.iter_mut() {
                *x *= inv;
            }
        }
    }
}

/// Reference scalar softmax-into: same arithmetic (and arithmetic order) as
/// the in-place reference, reading from `src` instead of overwriting twice.
fn softmax_into_scalar(src: &[f32], dst: &mut [f32]) {
    let max = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        let u = 1.0 / dst.len() as f32;
        dst.fill(u);
        return;
    }
    let mut sum = 0.0f32;
    for (o, &x) in dst.iter_mut().zip(src) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in dst.iter_mut() {
        *o *= inv;
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// See [`super::matmul_row`].
    ///
    /// # Safety
    /// Caller must guarantee avx2+fma are available, `b` holds at least
    /// `a_row.len() * bcols` elements, `out.len() == bcols`, and every
    /// `starts[k] <= bcols`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_row(
        a_row: &[f32],
        b: &[f32],
        bcols: usize,
        starts: Option<&[u32]>,
        out: &mut [f32],
    ) {
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let s = starts.map_or(0, |st| *st.get_unchecked(k) as usize);
            let b_row = b.get_unchecked(k * bcols + s..(k + 1) * bcols);
            axpy(aik, b_row, out.get_unchecked_mut(s..));
        }
    }

    /// `y += a * x` with 4x-unrolled 8-lane FMA.
    ///
    /// # Safety
    /// avx2+fma; `y.len() >= x.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let av = _mm256_set1_ps(a);
        let mut i = 0usize;
        while i + 32 <= n {
            let y0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
            let y1 =
                _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(i + 8)), _mm256_loadu_ps(yp.add(i + 8)));
            let y2 = _mm256_fmadd_ps(
                av,
                _mm256_loadu_ps(xp.add(i + 16)),
                _mm256_loadu_ps(yp.add(i + 16)),
            );
            let y3 = _mm256_fmadd_ps(
                av,
                _mm256_loadu_ps(xp.add(i + 24)),
                _mm256_loadu_ps(yp.add(i + 24)),
            );
            _mm256_storeu_ps(yp.add(i), y0);
            _mm256_storeu_ps(yp.add(i + 8), y1);
            _mm256_storeu_ps(yp.add(i + 16), y2);
            _mm256_storeu_ps(yp.add(i + 24), y3);
            i += 32;
        }
        while i + 8 <= n {
            let yv = _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
            _mm256_storeu_ps(yp.add(i), yv);
            i += 8;
        }
        while i < n {
            *yp.add(i) = a.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }

    /// # Safety
    /// avx2+fma; equal slice lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_bias_into_row(x: &[f32], bias: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm256_add_ps(
                _mm256_loadu_ps(x.as_ptr().add(i)),
                _mm256_loadu_ps(bias.as_ptr().add(i)),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            *out.get_unchecked_mut(i) = x.get_unchecked(i) + bias.get_unchecked(i);
            i += 1;
        }
    }

    /// # Safety
    /// avx2+fma; equal slice lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_bias_row(row: &mut [f32], bias: &[f32]) {
        let n = row.len();
        let rp = row.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let v =
                _mm256_add_ps(_mm256_loadu_ps(rp.add(i)), _mm256_loadu_ps(bias.as_ptr().add(i)));
            _mm256_storeu_ps(rp.add(i), v);
            i += 8;
        }
        while i < n {
            *rp.add(i) += *bias.get_unchecked(i);
            i += 1;
        }
    }

    /// # Safety
    /// avx2+fma; equal slice lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_bias_relu_row(row: &mut [f32], bias: &[f32]) {
        let n = row.len();
        let rp = row.as_mut_ptr();
        let zero = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= n {
            let v =
                _mm256_add_ps(_mm256_loadu_ps(rp.add(i)), _mm256_loadu_ps(bias.as_ptr().add(i)));
            _mm256_storeu_ps(rp.add(i), _mm256_max_ps(v, zero));
            i += 8;
        }
        while i < n {
            *rp.add(i) = (*rp.add(i) + *bias.get_unchecked(i)).max(0.0);
            i += 1;
        }
    }

    // Cephes-style single-precision exp, as in the classic avx_mathfun
    // kernels. Inputs below `FLUSH_LO` (where exp underflows the normal
    // range) return exactly 0.0 — this keeps `softmax` of a `-inf`-masked
    // logit exactly 0, which tests rely on.
    const EXP_HI: f32 = 88.376_26;
    const FLUSH_LO: f32 = -87.336_54; // ln(2^-126)
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const C1: f32 = 0.693_359_4;
    const C2: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 5.000_000_3e-1;

    /// Vectorized `exp` over 8 lanes.
    ///
    /// # Safety
    /// avx2+fma.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn exp256_ps(x0: __m256) -> __m256 {
        let keep = _mm256_cmp_ps(x0, _mm256_set1_ps(FLUSH_LO), _CMP_GT_OQ);
        let x = _mm256_max_ps(_mm256_min_ps(x0, _mm256_set1_ps(EXP_HI)), _mm256_set1_ps(FLUSH_LO));
        let fx = _mm256_floor_ps(_mm256_fmadd_ps(x, _mm256_set1_ps(LOG2EF), _mm256_set1_ps(0.5)));
        let x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(C1)));
        let x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(C2)));
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P2));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P4));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P5));
        y = _mm256_fmadd_ps(y, z, x);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // 2^fx via exponent bits; fx ∈ [-126, 128] after the clamp above.
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(0x7f)),
            23,
        ));
        _mm256_and_ps(_mm256_mul_ps(y, pow2), keep)
    }

    /// Scalar mirror of one [`exp256_ps`] lane, bit-identical thanks to the
    /// same op order (FMA included — this runs inside fma-enabled callers).
    #[inline(always)]
    fn exp_lane(x0: f32) -> f32 {
        // `!(>)` deliberately: NaN and -inf both flush to 0, matching the
        // vector compare-and-mask.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(x0 > FLUSH_LO) {
            return 0.0;
        }
        let x = x0.clamp(FLUSH_LO, EXP_HI);
        let fx = x.mul_add(LOG2EF, 0.5).floor();
        let x = x - fx * C1;
        let x = x - fx * C2;
        let z = x * x;
        let mut y = P0;
        y = y.mul_add(x, P1);
        y = y.mul_add(x, P2);
        y = y.mul_add(x, P3);
        y = y.mul_add(x, P4);
        y = y.mul_add(x, P5);
        y = y.mul_add(z, x);
        y += 1.0;
        let pow2 = f32::from_bits((((fx as i32) + 0x7f) as u32) << 23);
        y * pow2
    }

    /// Fused max/exp/normalize softmax over `n` elements from `src` into
    /// `dst`. `src == dst` aliasing is allowed (each chunk is read before it
    /// is written).
    ///
    /// # Safety
    /// avx2+fma; both pointers valid for `n` f32s.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn softmax(src: *const f32, dst: *mut f32, n: usize) {
        let mut max = f32::NEG_INFINITY;
        let mut i = 0usize;
        if n >= 8 {
            let mut mv = _mm256_loadu_ps(src);
            i = 8;
            while i + 8 <= n {
                mv = _mm256_max_ps(mv, _mm256_loadu_ps(src.add(i)));
                i += 8;
            }
            max = hmax(mv);
        }
        while i < n {
            max = max.max(*src.add(i));
            i += 1;
        }
        if !max.is_finite() {
            let u = 1.0 / n as f32;
            for j in 0..n {
                *dst.add(j) = u;
            }
            return;
        }
        let maxv = _mm256_set1_ps(max);
        let mut sumv = _mm256_setzero_ps();
        let mut sum = 0.0f32;
        i = 0;
        while i + 8 <= n {
            let e = exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(src.add(i)), maxv));
            _mm256_storeu_ps(dst.add(i), e);
            sumv = _mm256_add_ps(sumv, e);
            i += 8;
        }
        while i < n {
            let e = exp_lane(*src.add(i) - max);
            *dst.add(i) = e;
            sum += e;
            i += 1;
        }
        let sum = sum + hsum(sumv);
        let inv = 1.0 / sum;
        let invv = _mm256_set1_ps(inv);
        i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(dst.add(i), _mm256_mul_ps(_mm256_loadu_ps(dst.add(i)), invv));
            i += 8;
        }
        while i < n {
            *dst.add(i) *= inv;
            i += 1;
        }
    }

    #[inline(always)]
    unsafe fn hmax(v: __m256) -> f32 {
        let m = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        _mm_cvtss_f32(m)
    }

    #[inline(always)]
    pub(crate) unsafe fn hsum(v: __m256) -> f32 {
        let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                lo + (hi - lo) * ((s >> 40) as f32 / (1u64 << 24) as f32)
            })
            .collect()
    }

    fn rel_err(a: f32, b: f32) -> f32 {
        let d = (a - b).abs();
        if d == 0.0 {
            return 0.0;
        }
        d / a.abs().max(b.abs()).max(1e-30)
    }

    #[test]
    fn portable_axpy_bit_matches_exact() {
        for n in [1usize, 7, 8, 9, 31, 32, 33, 128, 129] {
            let x = pseudo(n as u64, n, -2.0, 2.0);
            let mut y1 = pseudo(n as u64 + 1, n, -1.0, 1.0);
            let mut y2 = y1.clone();
            for (o, &xv) in y1.iter_mut().zip(&x) {
                *o += 0.37 * xv;
            }
            axpy_unrolled(0.37, &x, &mut y2);
            assert_eq!(y1, y2, "n={n}");
        }
    }

    #[test]
    fn matmul_row_backends_agree() {
        for &(k, n) in &[(3usize, 5usize), (16, 64), (17, 128), (128, 131), (64, 1000)] {
            let a = pseudo(1, k, -1.0, 1.0);
            let b = pseudo(2, k * n, -1.0, 1.0);
            let mut exact = vec![0.0f32; n];
            let mut portable = vec![0.0f32; n];
            matmul_row_with(Backend::Exact, &a, &b, n, None, &mut exact);
            matmul_row_with(Backend::Portable, &a, &b, n, None, &mut portable);
            assert_eq!(exact, portable, "portable must be bit-exact ({k}x{n})");
            if avx2_available() {
                let mut v = vec![0.0f32; n];
                matmul_row_with(Backend::Avx2, &a, &b, n, None, &mut v);
                // FMA + 8-way reduction reassociate the k-sum; the bound
                // scales with the reduction depth, not the (possibly
                // cancelled) result magnitude.
                let tol = 1e-6 * (k as f32).max(8.0);
                for (x, y) in exact.iter().zip(&v) {
                    assert!(
                        (x - y).abs() < tol || rel_err(*x, *y) < 1e-5,
                        "avx2 {x} vs {y} ({k}x{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_row_honors_start_offsets() {
        let (k, n) = (6usize, 40usize);
        let a = pseudo(3, k, -1.0, 1.0);
        let mut b = pseudo(4, k * n, -1.0, 1.0);
        let starts: Vec<u32> = (0..k as u32).map(|i| (i * 7) % n as u32).collect();
        // Zero the pruned prefixes so the dense reference agrees.
        for (i, &s) in starts.iter().enumerate() {
            for j in 0..s as usize {
                b[i * n + j] = 0.0;
            }
        }
        let mut dense = vec![0.0f32; n];
        matmul_row_with(Backend::Exact, &a, &b, n, None, &mut dense);
        for be in [Backend::Exact, Backend::Portable, Backend::Avx2] {
            if be == Backend::Avx2 && !avx2_available() {
                continue;
            }
            let mut out = vec![0.0f32; n];
            matmul_row_with(be, &a, &b, n, Some(&starts), &mut out);
            for (x, y) in dense.iter().zip(&out) {
                assert!(rel_err(*x, *y) < 1e-5, "{be:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn avx2_exp_matches_std_exp() {
        if !avx2_available() {
            return;
        }
        let xs = pseudo(5, 4096, -30.0, 30.0);
        for chunk in xs.chunks_exact(8) {
            let mut got = [0.0f32; 8];
            // SAFETY: avx2 availability checked above.
            unsafe {
                let v = avx2::exp256_ps(std::arch::x86_64::_mm256_loadu_ps(chunk.as_ptr()));
                std::arch::x86_64::_mm256_storeu_ps(got.as_mut_ptr(), v);
            }
            for (x, g) in chunk.iter().zip(got) {
                let want = x.exp();
                assert!(rel_err(want, g) < 3e-7, "exp({x}) = {want}, got {g}");
            }
        }
    }

    #[test]
    fn avx2_exp_underflow_flushes_to_zero() {
        if !avx2_available() {
            return;
        }
        let xs = [f32::NEG_INFINITY, -1.0e4, -100.0, -87.0, 0.0, 1.0, -88.4, 5.0];
        let mut got = [0.0f32; 8];
        // SAFETY: avx2 availability checked above.
        unsafe {
            let v = avx2::exp256_ps(std::arch::x86_64::_mm256_loadu_ps(xs.as_ptr()));
            std::arch::x86_64::_mm256_storeu_ps(got.as_mut_ptr(), v);
        }
        assert_eq!(got[0], 0.0, "exp(-inf) must flush to exactly 0");
        assert_eq!(got[1], 0.0);
        assert_eq!(got[2], 0.0, "below ln(2^-126) flushes to 0");
        assert!(got[3] > 0.0, "-87 is above the flush threshold, got {}", got[3]);
        assert!(rel_err(got[3], (-87.0f32).exp()) < 3e-7);
        assert_eq!(got[4], 1.0, "exp(0) must be exactly 1");
        assert!(rel_err(got[5], std::f32::consts::E) < 3e-7);
    }

    #[test]
    fn softmax_backends_agree() {
        for n in [1usize, 2, 7, 8, 9, 64, 100, 128, 1000] {
            let src = pseudo(n as u64 + 9, n, -8.0, 8.0);
            let mut exact = vec![0.0f32; n];
            softmax_into_with(Backend::Exact, &src, &mut exact);
            let sum: f32 = exact.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for be in [Backend::Portable, Backend::Avx2] {
                if be == Backend::Avx2 && !avx2_available() {
                    continue;
                }
                let mut out = vec![0.0f32; n];
                softmax_into_with(be, &src, &mut out);
                for (x, y) in exact.iter().zip(&out) {
                    assert!(
                        (x - y).abs() < 1e-6 || rel_err(*x, *y) < 1e-5,
                        "{be:?} n={n}: {x} vs {y}"
                    );
                }
                // In-place variant must match the into variant bit-for-bit.
                let mut inplace = src.clone();
                softmax_slice_with(be, &mut inplace);
                assert_eq!(inplace, out, "{be:?} in-place vs into n={n}");
            }
        }
    }

    #[test]
    fn softmax_masked_and_uniform_rows() {
        for be in [Backend::Exact, Backend::Portable, Backend::Avx2] {
            if be == Backend::Avx2 && !avx2_available() {
                continue;
            }
            let mut m = vec![0.0f32, f32::NEG_INFINITY, 0.0];
            softmax_slice_with(be, &mut m);
            assert!((m[0] - 0.5).abs() < 1e-6, "{be:?}");
            assert_eq!(m[1], 0.0, "{be:?}: -inf logit must softmax to exactly 0");
            let mut u = vec![f32::NEG_INFINITY; 4];
            softmax_slice_with(be, &mut u);
            assert!(u.iter().all(|&x| (x - 0.25).abs() < 1e-6), "{be:?}");
        }
    }

    #[test]
    fn backend_detection_respects_availability() {
        let b = detect_backend();
        if b == Backend::Avx2 {
            assert!(avx2_available());
        }
    }

    #[test]
    fn epilogues_agree_across_backends() {
        for n in [1usize, 5, 8, 13, 128, 130] {
            let x = pseudo(n as u64 + 40, n, -1.0, 1.0);
            let bias = pseudo(n as u64 + 41, n, -0.5, 0.5);
            let mut exact_into = vec![0.0f32; n];
            add_bias_into_row_with(Backend::Exact, &x, &bias, &mut exact_into);
            let mut exact_relu = x.clone();
            add_bias_relu_row_with(Backend::Exact, &mut exact_relu, &bias);
            let mut exact_add = x.clone();
            add_bias_row_with(Backend::Exact, &mut exact_add, &bias);
            for be in [Backend::Portable, Backend::Avx2] {
                if be == Backend::Avx2 && !avx2_available() {
                    continue;
                }
                let mut into = vec![0.0f32; n];
                add_bias_into_row_with(be, &x, &bias, &mut into);
                assert_eq!(into, exact_into, "{be:?} add_bias_into n={n}");
                let mut relu = x.clone();
                add_bias_relu_row_with(be, &mut relu, &bias);
                assert_eq!(relu, exact_relu, "{be:?} add_bias_relu n={n}");
                let mut add = x.clone();
                add_bias_row_with(be, &mut add, &bias);
                assert_eq!(add, exact_add, "{be:?} add_bias n={n}");
            }
        }
    }
}
