//! Tape-based reverse-mode automatic differentiation.
//!
//! The tape is a flat arena of nodes ([`Node`]), each holding its forward
//! value and the operation that produced it. Forward values are computed
//! eagerly as the graph is built; [`Tape::backward`] then walks the arena in
//! reverse, accumulating gradients for every node and depositing parameter
//! gradients into a [`GradStore`] aligned with the [`ParamStore`].
//!
//! This is the substrate that makes *differentiable progressive sampling*
//! possible in Rust: the UAE query loss (paper Alg. 2) is an `n`-step chain
//! of model forwards, masked softmaxes and Gumbel-Softmax samples, all of
//! which are ordinary nodes on this tape.

use std::rc::Rc;

use crate::tensor::{log_softmax_in_place, softmax_in_place, Tensor};

/// Identifier of a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a trainable parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(u32);

impl ParamId {
    /// Position of the parameter inside its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Trainable parameters, owned outside any tape so they persist across
/// training steps.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter tensor under a diagnostic name.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len() as u32);
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Value of a parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.index()]
    }

    /// Mutable value of a parameter (used by optimizers).
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.index()]
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len() as u32).map(ParamId)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Estimated size in bytes when stored as `f32`.
    pub fn size_bytes(&self) -> usize {
        self.num_scalars() * std::mem::size_of::<f32>()
    }
}

/// Gradient accumulators aligned with a [`ParamStore`].
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    grads: Vec<Tensor>,
}

impl GradStore {
    /// Zero-initialized gradients matching `store`'s shapes.
    pub fn zeros_like(store: &ParamStore) -> Self {
        GradStore {
            grads: store.values.iter().map(|t| Tensor::zeros(t.rows(), t.cols())).collect(),
        }
    }

    /// Gradient of one parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.grads[id.index()]
    }

    /// Mutable gradient of one parameter.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.index()]
    }

    /// Reset all gradients to zero, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm across all gradients.
    pub fn l2_norm(&self) -> f32 {
        self.grads
            .iter()
            .flat_map(|g| g.data().iter())
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Scale every gradient by `s` (used for gradient clipping).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.grads {
            for x in g.data_mut() {
                *x *= s;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf (no gradient).
    Input,
    /// Trainable leaf; gradient goes to the [`GradStore`].
    Param(ParamId),
    /// `a @ b`.
    MatMul(NodeId, NodeId),
    /// `a @ (b ⊙ mask)` — masked linear layer (MADE).
    MatMulMasked(NodeId, NodeId, Rc<Tensor>),
    /// `x + bias`, bias broadcast over rows (`1 x c`).
    AddBias(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    MulScalar(NodeId, f32),
    AddScalar(NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    ClampMin(NodeId, f32),
    SliceCols(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    /// Row-wise softmax.
    Softmax(NodeId),
    /// Row-wise log-softmax.
    LogSoftmax(NodeId),
    /// Sum across columns → `r x 1`.
    RowSum(NodeId),
    /// Per-row column gather → `r x 1`.
    GatherCols(NodeId, Rc<Vec<u32>>),
    /// Elementwise max with subgradient to the larger branch (ties → first).
    Maximum(NodeId, NodeId),
    /// Mean of all elements → `1 x 1`.
    MeanAll(NodeId),
    /// Sum of all elements → `1 x 1`.
    SumAll(NodeId),
    /// `(r x c) ⊙ broadcast(r x 1)`.
    MulColBroadcast(NodeId, NodeId),
    /// Average groups of `group` consecutive rows → `(r / group) x c`.
    MeanRowGroups(NodeId, usize),
    /// Row lookup: `out[r] = table[idx[r]]` (`u32::MAX` → zero row).
    /// Backward scatter-adds into the table's gradient — the embedding
    /// lookup of §4.6's learnable tuple encodings.
    EmbedRows(NodeId, Rc<Vec<u32>>),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A single forward/backward computation graph.
///
/// Parameters are read from a borrowed [`ParamStore`]; gradients are written
/// to a caller-owned [`GradStore`], so one store can back many tapes.
///
/// ```
/// use uae_tensor::{GradStore, ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::scalar(2.0));
/// let mut grads = GradStore::zeros_like(&store);
///
/// let mut tape = Tape::new(&store);
/// let wn = tape.param(w);
/// let sq = tape.mul(wn, wn);       // w^2
/// let loss = tape.mean_all(sq);
/// tape.backward(loss, &mut grads); // d(w^2)/dw = 2w = 4
/// assert_eq!(grads.get(w).scalar_value(), 4.0);
/// ```
pub struct Tape<'a> {
    store: &'a ParamStore,
    nodes: Vec<Node>,
}

impl<'a> Tape<'a> {
    /// A fresh tape over a parameter store.
    pub fn new(store: &'a ParamStore) -> Self {
        Tape { store, nodes: Vec::with_capacity(64) }
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { value, op });
        id
    }

    /// Forward value of a node.
    #[inline]
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.index()].value
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- graph builders -------------------------------------------------

    /// Constant leaf.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Trainable parameter leaf.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let value = self.store.get(id).clone();
        self.push(value, Op::Param(id))
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// `a @ (b ⊙ mask)` — the masked linear layer used by MADE. `mask` has
    /// `b`'s shape and is treated as a constant.
    pub fn matmul_masked(&mut self, a: NodeId, b: NodeId, mask: Rc<Tensor>) -> NodeId {
        assert_eq!(self.value(b).shape(), mask.shape(), "mask shape mismatch");
        let masked = self.value(b).zip(&mask, |w, m| w * m);
        let v = self.value(a).matmul(&masked);
        self.push(v, Op::MatMulMasked(a, b, mask))
    }

    /// `x + bias` with `bias` shaped `1 x c` broadcast over rows.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (xr, xc) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, xc), "bias shape mismatch");
        let mut v = self.value(x).clone();
        for r in 0..xr {
            let brow = self.nodes[bias.index()].value.row(0).to_vec();
            for (o, b) in v.row_mut(r).iter_mut().zip(&brow) {
                *o += b;
            }
        }
        self.push(v, Op::AddBias(x, bias))
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x / y);
        self.push(v, Op::Div(a, b))
    }

    /// `x * c`.
    pub fn mul_scalar(&mut self, x: NodeId, c: f32) -> NodeId {
        let v = self.value(x).map(|v| v * c);
        self.push(v, Op::MulScalar(x, c))
    }

    /// `x + c`.
    pub fn add_scalar(&mut self, x: NodeId, c: f32) -> NodeId {
        let v = self.value(x).map(|v| v + c);
        self.push(v, Op::AddScalar(x))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| v.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(v, Op::Sigmoid(x))
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::exp);
        self.push(v, Op::Exp(x))
    }

    /// Elementwise natural log; the caller must guarantee positivity
    /// (compose with [`Tape::clamp_min`] when in doubt).
    pub fn ln(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::ln);
        self.push(v, Op::Ln(x))
    }

    /// `max(x, c)` with pass-through gradient where `x > c`.
    pub fn clamp_min(&mut self, x: NodeId, c: f32) -> NodeId {
        let v = self.value(x).map(|v| v.max(c));
        self.push(v, Op::ClampMin(x, c))
    }

    /// Copy of columns `start..end`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let v = self.value(x).slice_cols(start, end);
        self.push(v, Op::SliceCols(x, start, end))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        let mut v = self.value(x).clone();
        for r in 0..v.rows() {
            softmax_in_place(v.row_mut(r));
        }
        self.push(v, Op::Softmax(x))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, x: NodeId) -> NodeId {
        let mut v = self.value(x).clone();
        for r in 0..v.rows() {
            log_softmax_in_place(v.row_mut(r));
        }
        self.push(v, Op::LogSoftmax(x))
    }

    /// Sum across columns → `r x 1`.
    pub fn row_sum(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).row_sums();
        self.push(v, Op::RowSum(x))
    }

    /// Per-row gather: `out[r] = x[r, idx[r]]` → `r x 1`.
    pub fn gather_cols(&mut self, x: NodeId, idx: Rc<Vec<u32>>) -> NodeId {
        let t = self.value(x);
        assert_eq!(t.rows(), idx.len(), "gather index length mismatch");
        let mut v = Tensor::zeros(t.rows(), 1);
        for r in 0..t.rows() {
            v.data_mut()[r] = t.at(r, idx[r] as usize);
        }
        self.push(v, Op::GatherCols(x, idx))
    }

    /// Elementwise maximum; the subgradient follows the larger input
    /// (ties go to `a`).
    pub fn maximum(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), f32::max);
        self.push(v, Op::Maximum(a, b))
    }

    /// Mean over all elements → scalar node.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).mean());
        self.push(v, Op::MeanAll(x))
    }

    /// Sum over all elements → scalar node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).sum());
        self.push(v, Op::SumAll(x))
    }

    /// `(r x c) ⊙ broadcast(v: r x 1)` — scales each row by a scalar.
    pub fn mul_col_broadcast(&mut self, x: NodeId, v: NodeId) -> NodeId {
        let xv = self.value(x);
        let vv = self.value(v);
        assert_eq!(vv.cols(), 1, "broadcast vector must be r x 1");
        assert_eq!(vv.rows(), xv.rows(), "broadcast row mismatch");
        let mut out = xv.clone();
        for r in 0..out.rows() {
            let s = vv.at(r, 0);
            for o in out.row_mut(r) {
                *o *= s;
            }
        }
        self.push(out, Op::MulColBroadcast(x, v))
    }

    /// Embedding lookup: `out[r] = table[idx[r]]`, with the sentinel
    /// `u32::MAX` producing a zero row (the wildcard token for learnable
    /// encodings). Gradients scatter-add into `table`.
    pub fn embed_rows(&mut self, table: NodeId, idx: Rc<Vec<u32>>) -> NodeId {
        let t = self.value(table);
        let mut v = Tensor::zeros(idx.len(), t.cols());
        for (r, &i) in idx.iter().enumerate() {
            if i != u32::MAX {
                debug_assert!((i as usize) < t.rows(), "embedding index out of range");
                v.row_mut(r).copy_from_slice(t.row(i as usize));
            }
        }
        self.push(v, Op::EmbedRows(table, idx))
    }

    /// Average each group of `group` consecutive rows → `(r/group) x c`.
    ///
    /// Used by differentiable progressive sampling to average the density
    /// estimates of the `S` samples belonging to the same query.
    pub fn mean_row_groups(&mut self, x: NodeId, group: usize) -> NodeId {
        let t = self.value(x);
        assert!(group > 0 && t.rows().is_multiple_of(group), "row count not divisible by group");
        let out_rows = t.rows() / group;
        let mut out = Tensor::zeros(out_rows, t.cols());
        for r in 0..t.rows() {
            let orow = r / group;
            for c in 0..t.cols() {
                let v = t.at(r, c) / group as f32;
                out.set(orow, c, out.at(orow, c) + v);
            }
        }
        self.push(out, Op::MeanRowGroups(x, group))
    }

    // ---- backward --------------------------------------------------------

    /// Reverse-mode differentiation from `loss` (must be `1 x 1`),
    /// accumulating parameter gradients into `grads`.
    pub fn backward(&self, loss: NodeId, grads: &mut GradStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut node_grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        node_grads[loss.index()] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.index()).rev() {
            let Some(gy) = node_grads[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Input => {}
                Op::Param(pid) => {
                    grads.get_mut(*pid).add_assign(&gy);
                }
                Op::MatMul(a, b) => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    accumulate(&mut node_grads, *a, gy.matmul_t(bv));
                    accumulate(&mut node_grads, *b, av.t_matmul(&gy));
                }
                Op::MatMulMasked(a, b, mask) => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let masked = bv.zip(mask, |w, m| w * m);
                    accumulate(&mut node_grads, *a, gy.matmul_t(&masked));
                    let gb = av.t_matmul(&gy).zip(mask, |g, m| g * m);
                    accumulate(&mut node_grads, *b, gb);
                }
                Op::AddBias(x, bias) => {
                    let mut gb = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for (o, g) in gb.row_mut(0).iter_mut().zip(gy.row(r)) {
                            *o += g;
                        }
                    }
                    accumulate(&mut node_grads, *x, gy);
                    accumulate(&mut node_grads, *bias, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut node_grads, *a, gy.clone());
                    accumulate(&mut node_grads, *b, gy);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut node_grads, *a, gy.clone());
                    accumulate(&mut node_grads, *b, gy.map(|g| -g));
                }
                Op::Mul(a, b) => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    accumulate(&mut node_grads, *a, gy.zip(bv, |g, y| g * y));
                    accumulate(&mut node_grads, *b, gy.zip(av, |g, x| g * x));
                }
                Op::Div(a, b) => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    accumulate(&mut node_grads, *a, gy.zip(bv, |g, y| g / y));
                    let mut gb = gy.zip(av, |g, x| g * x);
                    gb = gb.zip(bv, |g, y| -g / (y * y));
                    accumulate(&mut node_grads, *b, gb);
                }
                Op::MulScalar(x, c) => {
                    accumulate(&mut node_grads, *x, gy.map(|g| g * c));
                }
                Op::AddScalar(x) => {
                    accumulate(&mut node_grads, *x, gy);
                }
                Op::Relu(x) => {
                    let xv = &self.nodes[x.index()].value;
                    accumulate(
                        &mut node_grads,
                        *x,
                        gy.zip(xv, |g, v| if v > 0.0 { g } else { 0.0 }),
                    );
                }
                Op::Sigmoid(x) => {
                    let s = &self.nodes[idx].value;
                    accumulate(&mut node_grads, *x, gy.zip(s, |g, s| g * s * (1.0 - s)));
                }
                Op::Exp(x) => {
                    let y = &self.nodes[idx].value;
                    accumulate(&mut node_grads, *x, gy.zip(y, |g, y| g * y));
                }
                Op::Ln(x) => {
                    let xv = &self.nodes[x.index()].value;
                    accumulate(&mut node_grads, *x, gy.zip(xv, |g, v| g / v));
                }
                Op::ClampMin(x, c) => {
                    let xv = &self.nodes[x.index()].value;
                    let c = *c;
                    accumulate(&mut node_grads, *x, gy.zip(xv, |g, v| if v > c { g } else { 0.0 }));
                }
                Op::SliceCols(x, start, _end) => {
                    let xv = &self.nodes[x.index()].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gx.set(r, start + c, gy.at(r, c));
                        }
                    }
                    accumulate(&mut node_grads, *x, gx);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = self.nodes[p.index()].value.cols();
                        accumulate(&mut node_grads, p, gy.slice_cols(off, off + w));
                        off += w;
                    }
                }
                Op::Softmax(x) => {
                    let s = &self.nodes[idx].value;
                    let mut gx = Tensor::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let srow = s.row(r);
                        let grow = gy.row(r);
                        let dot: f32 = srow.iter().zip(grow).map(|(a, b)| a * b).sum();
                        for (o, (sv, gv)) in gx.row_mut(r).iter_mut().zip(srow.iter().zip(grow)) {
                            *o = sv * (gv - dot);
                        }
                    }
                    accumulate(&mut node_grads, *x, gx);
                }
                Op::LogSoftmax(x) => {
                    let ls = &self.nodes[idx].value;
                    let mut gx = Tensor::zeros(ls.rows(), ls.cols());
                    for r in 0..ls.rows() {
                        let grow = gy.row(r);
                        let gsum: f32 = grow.iter().sum();
                        let lsrow = ls.row(r);
                        for (o, (lsv, gv)) in gx.row_mut(r).iter_mut().zip(lsrow.iter().zip(grow)) {
                            *o = gv - lsv.exp() * gsum;
                        }
                    }
                    accumulate(&mut node_grads, *x, gx);
                }
                Op::RowSum(x) => {
                    let xv = &self.nodes[x.index()].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        let g = gy.at(r, 0);
                        for o in gx.row_mut(r) {
                            *o = g;
                        }
                    }
                    accumulate(&mut node_grads, *x, gx);
                }
                Op::GatherCols(x, idxs) => {
                    let xv = &self.nodes[x.index()].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        gx.set(r, idxs[r] as usize, gy.at(r, 0));
                    }
                    accumulate(&mut node_grads, *x, gx);
                }
                Op::Maximum(a, b) => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let mut ga = Tensor::zeros(gy.rows(), gy.cols());
                    let mut gb = Tensor::zeros(gy.rows(), gy.cols());
                    for i in 0..gy.len() {
                        let g = gy.data()[i];
                        if av.data()[i] >= bv.data()[i] {
                            ga.data_mut()[i] = g;
                        } else {
                            gb.data_mut()[i] = g;
                        }
                    }
                    accumulate(&mut node_grads, *a, ga);
                    accumulate(&mut node_grads, *b, gb);
                }
                Op::MeanAll(x) => {
                    let xv = &self.nodes[x.index()].value;
                    let g = gy.scalar_value() / xv.len() as f32;
                    accumulate(&mut node_grads, *x, Tensor::full(xv.rows(), xv.cols(), g));
                }
                Op::SumAll(x) => {
                    let xv = &self.nodes[x.index()].value;
                    let g = gy.scalar_value();
                    accumulate(&mut node_grads, *x, Tensor::full(xv.rows(), xv.cols(), g));
                }
                Op::MulColBroadcast(x, v) => {
                    let xv = &self.nodes[x.index()].value;
                    let vv = &self.nodes[v.index()].value;
                    let mut gx = gy.clone();
                    let mut gv = Tensor::zeros(vv.rows(), 1);
                    for r in 0..gy.rows() {
                        let s = vv.at(r, 0);
                        let mut acc = 0.0f32;
                        for c in 0..gy.cols() {
                            acc += gy.at(r, c) * xv.at(r, c);
                        }
                        gv.set(r, 0, acc);
                        for o in gx.row_mut(r) {
                            *o *= s;
                        }
                    }
                    accumulate(&mut node_grads, *x, gx);
                    accumulate(&mut node_grads, *v, gv);
                }
                Op::EmbedRows(table, idx) => {
                    let tv = &self.nodes[table.index()].value;
                    let mut gt = Tensor::zeros(tv.rows(), tv.cols());
                    for (r, &i) in idx.iter().enumerate() {
                        if i != u32::MAX {
                            let src = gy.row(r);
                            for (o, g) in gt.row_mut(i as usize).iter_mut().zip(src) {
                                *o += g;
                            }
                        }
                    }
                    accumulate(&mut node_grads, *table, gt);
                }
                Op::MeanRowGroups(x, group) => {
                    let xv = &self.nodes[x.index()].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    let inv = 1.0 / *group as f32;
                    for r in 0..xv.rows() {
                        let orow = r / group;
                        for c in 0..xv.cols() {
                            gx.set(r, c, gy.at(orow, c) * inv);
                        }
                    }
                    accumulate(&mut node_grads, *x, gx);
                }
            }
        }
    }
}

fn accumulate(node_grads: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
    match &mut node_grads[id.index()] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[(&str, Tensor)]) -> (ParamStore, Vec<ParamId>) {
        let mut s = ParamStore::new();
        let ids = values.iter().map(|(n, t)| s.add(*n, t.clone())).collect();
        (s, ids)
    }

    #[test]
    fn linear_regression_gradient() {
        // loss = mean((x @ w - y)^2); check dL/dw analytically.
        let (store, ids) = store_with(&[("w", Tensor::from_vec(2, 1, vec![0.5, -0.25]))]);
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 0.5]));
        let y = tape.input(Tensor::from_vec(3, 1, vec![1.0, 0.0, -1.0]));
        let w = tape.param(ids[0]);
        let pred = tape.matmul(x, w);
        let err = tape.sub(pred, y);
        let sq = tape.mul(err, err);
        let loss = tape.mean_all(sq);

        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);

        // Analytic gradient: (2/n) * X^T (Xw - y)
        let xv = Tensor::from_vec(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 0.5]);
        let wv = Tensor::from_vec(2, 1, vec![0.5, -0.25]);
        let yv = Tensor::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let resid = xv.matmul(&wv).zip(&yv, |p, t| p - t);
        let expect = xv.t_matmul(&resid).map(|v| v * 2.0 / 3.0);
        assert!(grads.get(ids[0]).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn param_used_twice_accumulates() {
        let (store, ids) = store_with(&[("w", Tensor::scalar(3.0))]);
        let mut tape = Tape::new(&store);
        let w1 = tape.param(ids[0]);
        let w2 = tape.param(ids[0]);
        let prod = tape.mul(w1, w2); // w^2 → d/dw = 2w = 6
        let loss = tape.mean_all(prod);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        assert!((grads.get(ids[0]).scalar_value() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn maximum_routes_gradient() {
        let (store, ids) = store_with(&[
            ("a", Tensor::from_vec(1, 2, vec![2.0, -1.0])),
            ("b", Tensor::from_vec(1, 2, vec![1.0, 5.0])),
        ]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let b = tape.param(ids[1]);
        let m = tape.maximum(a, b);
        let loss = tape.sum_all(m);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        assert_eq!(grads.get(ids[0]).data(), &[1.0, 0.0]);
        assert_eq!(grads.get(ids[1]).data(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_gradient_sums_to_zero() {
        // d(softmax)/dx rows always sum to 0 when upstream grad is one-hot.
        let (store, ids) = store_with(&[("x", Tensor::from_vec(1, 4, vec![0.1, 0.9, -0.4, 2.0]))]);
        let mut tape = Tape::new(&store);
        let x = tape.param(ids[0]);
        let s = tape.softmax(x);
        let g = tape.gather_cols(s, Rc::new(vec![2]));
        let loss = tape.sum_all(g);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        let total: f32 = grads.get(ids[0]).data().iter().sum();
        assert!(total.abs() < 1e-6, "softmax grad rows must sum to 0, got {total}");
    }

    #[test]
    fn embed_rows_looks_up_and_scatter_adds() {
        let (store, ids) =
            store_with(&[("emb", Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))]);
        let mut tape = Tape::new(&store);
        let e = tape.param(ids[0]);
        // Rows 2, 0, 0, wildcard.
        let out = tape.embed_rows(e, Rc::new(vec![2, 0, 0, u32::MAX]));
        assert_eq!(tape.value(out).data(), &[5.0, 6.0, 1.0, 2.0, 1.0, 2.0, 0.0, 0.0]);
        let loss = tape.sum_all(out);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        // Row 0 used twice → gradient 2; row 1 unused → 0; row 2 once → 1.
        assert_eq!(grads.get(ids[0]).data(), &[2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_row_groups_averages() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(4, 1, vec![1.0, 3.0, 10.0, 20.0]));
        let m = tape.mean_row_groups(x, 2);
        assert_eq!(tape.value(m).data(), &[2.0, 15.0]);
    }

    #[test]
    fn grad_store_clipping() {
        let (store, ids) = store_with(&[("w", Tensor::from_vec(1, 2, vec![3.0, 4.0]))]);
        let mut grads = GradStore::zeros_like(&store);
        grads.get_mut(ids[0]).data_mut().copy_from_slice(&[3.0, 4.0]);
        assert!((grads.l2_norm() - 5.0).abs() < 1e-6);
        grads.scale(0.5);
        assert_eq!(grads.get(ids[0]).data(), &[1.5, 2.0]);
    }
}
