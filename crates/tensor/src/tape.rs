//! Tape-based reverse-mode automatic differentiation, split into a
//! structural **plan** and a reusable **workspace**.
//!
//! The tape records a flat arena of nodes. The *plan* ([`TapePlan`]) is the
//! structural half: the op sequence with its operand dependencies. The
//! *workspace* ([`TapeWorkspace`]) is the buffer half: one value tensor per
//! node plus the backward gradient slots. Forward values are computed
//! eagerly as the graph is built — each op writes into its workspace buffer
//! via the `_into` tensor kernels instead of allocating a fresh tensor —
//! and [`Tape::backward`] then walks the plan in reverse, accumulating
//! gradients for every node and depositing parameter gradients into a
//! [`GradStore`] aligned with the [`ParamStore`].
//!
//! [`Tape::new`] owns a private workspace (the drop-in behavior);
//! [`Tape::with_workspace`] borrows a caller-owned [`TapeWorkspace`] whose
//! buffers are `reset()` between forwards instead of freed, so steady-state
//! graph construction performs no tensor allocations once the arena has
//! warmed up to the graph's shapes. One workspace serves any sequence of
//! graphs — shapes may differ between forwards; buffers grow to the
//! high-water mark and stay.
//!
//! This is the substrate that makes *differentiable progressive sampling*
//! possible in Rust: the UAE query loss (paper Alg. 2) is an `n`-step chain
//! of model forwards, masked softmaxes and Gumbel-Softmax samples, all of
//! which are ordinary nodes on this tape.

use std::sync::Arc;

use crate::tensor::{
    add_bias_into, log_softmax_in_place, map_into, matmul_into, softmax_in_place, zip_into, Tensor,
};

/// Identifier of a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a trainable parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(u32);

impl ParamId {
    /// Position of the parameter inside its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Trainable parameters, owned outside any tape so they persist across
/// training steps.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter tensor under a diagnostic name.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len() as u32);
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Value of a parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.index()]
    }

    /// Mutable value of a parameter (used by optimizers).
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.index()]
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len() as u32).map(ParamId)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Estimated size in bytes when stored as `f32`.
    pub fn size_bytes(&self) -> usize {
        self.num_scalars() * std::mem::size_of::<f32>()
    }
}

/// Gradient accumulators aligned with a [`ParamStore`].
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    grads: Vec<Tensor>,
}

impl GradStore {
    /// Zero-initialized gradients matching `store`'s shapes.
    pub fn zeros_like(store: &ParamStore) -> Self {
        GradStore {
            grads: store.values.iter().map(|t| Tensor::zeros(t.rows(), t.cols())).collect(),
        }
    }

    /// Gradient of one parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.grads[id.index()]
    }

    /// Mutable gradient of one parameter.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.index()]
    }

    /// Reset all gradients to zero, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm across all gradients, accumulated in `f64`.
    ///
    /// `f32` accumulation loses precision on large parameter counts (a few
    /// dominant squared terms absorb the long tail of small ones), and this
    /// norm feeds the clip and divergence guards — a silently low norm can
    /// skip a clip that was needed. The squares and the running sum are
    /// therefore carried in `f64` end to end; use this form wherever the
    /// norm feeds a guard.
    pub fn l2_norm_f64(&self) -> f64 {
        self.grads
            .iter()
            .flat_map(|g| g.data().iter())
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Global L2 norm as `f32` (computed in `f64`, rounded once at the end).
    pub fn l2_norm(&self) -> f32 {
        self.l2_norm_f64() as f32
    }

    /// Scale every gradient by `s` (used for gradient clipping).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.grads {
            for x in g.data_mut() {
                *x *= s;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf (no gradient).
    Input,
    /// Trainable leaf; gradient goes to the [`GradStore`].
    Param(ParamId),
    /// `a @ b`.
    MatMul(NodeId, NodeId),
    /// `a @ (b ⊙ mask)` — masked linear layer (MADE).
    MatMulMasked(NodeId, NodeId, Arc<Tensor>),
    /// `x + bias`, bias broadcast over rows (`1 x c`).
    AddBias(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    MulScalar(NodeId, f32),
    AddScalar(NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    ClampMin(NodeId, f32),
    SliceCols(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    /// Row-wise softmax.
    Softmax(NodeId),
    /// Row-wise log-softmax.
    LogSoftmax(NodeId),
    /// Sum across columns → `r x 1`.
    RowSum(NodeId),
    /// Per-row column gather → `r x 1`.
    GatherCols(NodeId, Arc<Vec<u32>>),
    /// Elementwise max with subgradient to the larger branch (ties → first).
    Maximum(NodeId, NodeId),
    /// Mean of all elements → `1 x 1`.
    MeanAll(NodeId),
    /// Sum of all elements → `1 x 1`.
    SumAll(NodeId),
    /// `(r x c) ⊙ broadcast(r x 1)`.
    MulColBroadcast(NodeId, NodeId),
    /// Average groups of `group` consecutive rows → `(r / group) x c`.
    MeanRowGroups(NodeId, usize),
    /// Row lookup: `out[r] = table[idx[r]]` (`u32::MAX` → zero row).
    /// Backward scatter-adds into the table's gradient — the embedding
    /// lookup of §4.6's learnable tuple encodings.
    EmbedRows(NodeId, Arc<Vec<u32>>),
}

/// The structural half of a tape: the op sequence with its operand
/// dependencies. One entry per node; values live in the paired
/// [`TapeWorkspace`] arena at the same index. The backing `Vec` is cleared
/// (not freed) between forwards, so op records reuse their storage.
#[derive(Debug, Default)]
pub struct TapePlan {
    ops: Vec<Op>,
}

impl TapePlan {
    /// Number of recorded ops (== node count of the current graph).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The buffer half of a tape: an arena of node value tensors, the backward
/// gradient slots, and a scratch tensor for ops that need a temporary
/// (masked matmul). Buffers are *reset* between forwards — logically
/// cleared, never freed — so a warmed workspace builds graphs with zero
/// tensor allocations.
///
/// Ownership rules (see DESIGN.md §5d):
/// * Exactly one [`Tape`] may borrow a workspace at a time (enforced by
///   `&mut`). Values read through [`Tape::value`] borrow the workspace and
///   die with the tape.
/// * `reset()` is legal only when no tape borrows the workspace; it
///   invalidates all `NodeId`s minted since the previous reset.
///   [`Tape::with_workspace`] resets implicitly.
/// * A workspace may outlive any number of tapes and may be moved between
///   owners (it holds no references), but must not be shared across threads
///   concurrently.
#[derive(Debug, Default)]
pub struct TapeWorkspace {
    plan: TapePlan,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    scratch: Tensor,
}

impl TapeWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logically clear the recorded plan, keeping every buffer allocation
    /// for the next forward. Invalidates outstanding [`NodeId`]s.
    pub fn reset(&mut self) {
        self.plan.ops.clear();
    }

    /// The structural plan of the most recent graph.
    pub fn plan(&self) -> &TapePlan {
        &self.plan
    }

    /// Number of value buffers held in the arena (the high-water node
    /// count across all graphs built on this workspace).
    pub fn num_value_buffers(&self) -> usize {
        self.values.len()
    }
}

/// Owned-or-borrowed workspace slot, so `Tape::new` stays drop-in while
/// `Tape::with_workspace` reuses caller-owned buffers.
enum WsSlot<'w> {
    Owned(Box<TapeWorkspace>),
    Borrowed(&'w mut TapeWorkspace),
}

impl WsSlot<'_> {
    #[inline]
    fn get(&self) -> &TapeWorkspace {
        match self {
            WsSlot::Owned(ws) => ws,
            WsSlot::Borrowed(ws) => ws,
        }
    }

    #[inline]
    fn get_mut(&mut self) -> &mut TapeWorkspace {
        match self {
            WsSlot::Owned(ws) => ws,
            WsSlot::Borrowed(ws) => ws,
        }
    }
}

/// A single forward/backward computation graph.
///
/// Parameters are read from a borrowed [`ParamStore`]; gradients are written
/// to a caller-owned [`GradStore`], so one store can back many tapes — and
/// one [`TapeWorkspace`] can back many consecutive tapes without
/// reallocating node buffers.
///
/// ```
/// use uae_tensor::{GradStore, ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::scalar(2.0));
/// let mut grads = GradStore::zeros_like(&store);
///
/// let mut tape = Tape::new(&store);
/// let wn = tape.param(w);
/// let sq = tape.mul(wn, wn);       // w^2
/// let loss = tape.mean_all(sq);
/// tape.backward(loss, &mut grads); // d(w^2)/dw = 2w = 4
/// assert_eq!(grads.get(w).scalar_value(), 4.0);
/// ```
pub struct Tape<'a> {
    store: &'a ParamStore,
    ws: WsSlot<'a>,
}

impl<'a> Tape<'a> {
    /// A fresh tape over a parameter store, with a private workspace.
    pub fn new(store: &'a ParamStore) -> Self {
        Tape { store, ws: WsSlot::Owned(Box::new(TapeWorkspace::new())) }
    }

    /// A tape reusing a caller-owned workspace. The workspace is `reset()`
    /// first (plan cleared, buffers kept), so a warmed workspace builds the
    /// graph without tensor allocations.
    pub fn with_workspace(store: &'a ParamStore, ws: &'a mut TapeWorkspace) -> Self {
        ws.reset();
        Tape { store, ws: WsSlot::Borrowed(ws) }
    }

    /// Reserve (or reuse) the value buffer of the next node, resized to
    /// `rows x cols`, returning it alongside the values of all existing
    /// nodes. Buffer contents are unspecified; the caller writes every
    /// element (or zero-fills for accumulation ops).
    fn begin(&mut self, rows: usize, cols: usize) -> (&[Tensor], &mut Tensor) {
        let ws = self.ws.get_mut();
        let n = ws.plan.ops.len();
        if ws.values.len() <= n {
            ws.values.push(Tensor::default());
        }
        let (prev, rest) = ws.values.split_at_mut(n);
        let out = &mut rest[0];
        out.resize(rows, cols);
        (prev, out)
    }

    /// Record the op that produced the buffer reserved by `begin`.
    fn commit(&mut self, op: Op) -> NodeId {
        let ws = self.ws.get_mut();
        let id = NodeId(ws.plan.ops.len() as u32);
        ws.plan.ops.push(op);
        id
    }

    /// Forward value of a node.
    #[inline]
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.ws.get().values[id.index()]
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.ws.get().plan.ops.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ws.get().plan.ops.is_empty()
    }

    // ---- graph builders -------------------------------------------------

    /// Constant leaf. The value is copied into the workspace arena; prefer
    /// [`Tape::input_ref`] / [`Tape::input_with`] when the caller keeps (or
    /// can build in place) the tensor, to avoid the intermediate
    /// allocation.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.input_ref(&value)
    }

    /// Constant leaf copied from a borrowed tensor.
    pub fn input_ref(&mut self, value: &Tensor) -> NodeId {
        {
            let (_, out) = self.begin(value.rows(), value.cols());
            out.data_mut().copy_from_slice(value.data());
        }
        self.commit(Op::Input)
    }

    /// All-zero constant leaf, written directly into the arena.
    pub fn input_zeros(&mut self, rows: usize, cols: usize) -> NodeId {
        {
            let (_, out) = self.begin(rows, cols);
            out.fill_zero();
        }
        self.commit(Op::Input)
    }

    /// Constant-filled leaf, written directly into the arena.
    pub fn input_full(&mut self, rows: usize, cols: usize, v: f32) -> NodeId {
        {
            let (_, out) = self.begin(rows, cols);
            out.data_mut().fill(v);
        }
        self.commit(Op::Input)
    }

    /// Constant leaf whose contents are produced by `fill` writing into the
    /// arena buffer (pre-sized to `rows x cols`, contents unspecified —
    /// `fill` must write every element).
    pub fn input_with(
        &mut self,
        rows: usize,
        cols: usize,
        fill: impl FnOnce(&mut Tensor),
    ) -> NodeId {
        {
            let (_, out) = self.begin(rows, cols);
            fill(out);
            debug_assert_eq!(out.shape(), (rows, cols), "input_with must keep the shape");
        }
        self.commit(Op::Input)
    }

    /// Trainable parameter leaf.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let store = self.store;
        {
            let p = store.get(id);
            let (rows, cols) = p.shape();
            let (_, out) = self.begin(rows, cols);
            out.data_mut().copy_from_slice(p.data());
        }
        self.commit(Op::Param(id))
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let rows = self.value(a).rows();
        let cols = self.value(b).cols();
        {
            let (prev, out) = self.begin(rows, cols);
            matmul_into(&prev[a.index()], &prev[b.index()], out, false);
        }
        self.commit(Op::MatMul(a, b))
    }

    /// `a @ (b ⊙ mask)` — the masked linear layer used by MADE. `mask` has
    /// `b`'s shape and is treated as a constant.
    pub fn matmul_masked(&mut self, a: NodeId, b: NodeId, mask: Arc<Tensor>) -> NodeId {
        assert_eq!(self.value(b).shape(), mask.shape(), "mask shape mismatch");
        let rows = self.value(a).rows();
        let cols = self.value(b).cols();
        {
            let ws = self.ws.get_mut();
            let n = ws.plan.ops.len();
            if ws.values.len() <= n {
                ws.values.push(Tensor::default());
            }
            let TapeWorkspace { values, scratch, .. } = ws;
            let (prev, rest) = values.split_at_mut(n);
            let out = &mut rest[0];
            out.resize(rows, cols);
            zip_into(&prev[b.index()], &mask, scratch, |w, m| w * m);
            matmul_into(&prev[a.index()], scratch, out, false);
        }
        self.commit(Op::MatMulMasked(a, b, mask))
    }

    /// `x + bias` with `bias` shaped `1 x c` broadcast over rows.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (xr, xc) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, xc), "bias shape mismatch");
        {
            let (prev, out) = self.begin(xr, xc);
            add_bias_into(&prev[x.index()], &prev[bias.index()], out);
        }
        self.commit(Op::AddBias(x, bias))
    }

    fn zip_op(&mut self, a: NodeId, b: NodeId, op: Op, f: impl Fn(f32, f32) -> f32) -> NodeId {
        let (rows, cols) = self.value(a).shape();
        {
            let (prev, out) = self.begin(rows, cols);
            zip_into(&prev[a.index()], &prev[b.index()], out, f);
        }
        self.commit(op)
    }

    fn map_op(&mut self, x: NodeId, op: Op, f: impl Fn(f32) -> f32) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        {
            let (prev, out) = self.begin(rows, cols);
            map_into(&prev[x.index()], out, f);
        }
        self.commit(op)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_op(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_op(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_op(a, b, Op::Mul(a, b), |x, y| x * y)
    }

    /// Elementwise `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_op(a, b, Op::Div(a, b), |x, y| x / y)
    }

    /// `x * c`.
    pub fn mul_scalar(&mut self, x: NodeId, c: f32) -> NodeId {
        self.map_op(x, Op::MulScalar(x, c), |v| v * c)
    }

    /// `x + c`.
    pub fn add_scalar(&mut self, x: NodeId, c: f32) -> NodeId {
        self.map_op(x, Op::AddScalar(x), |v| v + c)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        self.map_op(x, Op::Relu(x), |v| v.max(0.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        self.map_op(x, Op::Sigmoid(x), |v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, x: NodeId) -> NodeId {
        self.map_op(x, Op::Exp(x), f32::exp)
    }

    /// Elementwise natural log; the caller must guarantee positivity
    /// (compose with [`Tape::clamp_min`] when in doubt).
    pub fn ln(&mut self, x: NodeId) -> NodeId {
        self.map_op(x, Op::Ln(x), f32::ln)
    }

    /// `max(x, c)` with pass-through gradient where `x > c`.
    pub fn clamp_min(&mut self, x: NodeId, c: f32) -> NodeId {
        self.map_op(x, Op::ClampMin(x, c), |v| v.max(c))
    }

    /// Copy of columns `start..end`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        assert!(start <= end && end <= cols, "slice_cols out of range");
        {
            let (prev, out) = self.begin(rows, end - start);
            let xv = &prev[x.index()];
            for r in 0..rows {
                out.row_mut(r).copy_from_slice(&xv.row(r)[start..end]);
            }
        }
        self.commit(Op::SliceCols(x, start, end))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = self.value(parts[0]).rows();
        let cols: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        {
            let (prev, out) = self.begin(rows, cols);
            for r in 0..rows {
                let orow = out.row_mut(r);
                let mut off = 0;
                for &p in parts {
                    let pv = &prev[p.index()];
                    assert_eq!(pv.rows(), rows, "concat_cols row mismatch");
                    orow[off..off + pv.cols()].copy_from_slice(pv.row(r));
                    off += pv.cols();
                }
            }
        }
        self.commit(Op::ConcatCols(parts.to_vec()))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        {
            let (prev, out) = self.begin(rows, cols);
            out.data_mut().copy_from_slice(prev[x.index()].data());
            for r in 0..rows {
                softmax_in_place(out.row_mut(r));
            }
        }
        self.commit(Op::Softmax(x))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        {
            let (prev, out) = self.begin(rows, cols);
            out.data_mut().copy_from_slice(prev[x.index()].data());
            for r in 0..rows {
                log_softmax_in_place(out.row_mut(r));
            }
        }
        self.commit(Op::LogSoftmax(x))
    }

    /// Sum across columns → `r x 1`.
    pub fn row_sum(&mut self, x: NodeId) -> NodeId {
        let rows = self.value(x).rows();
        {
            let (prev, out) = self.begin(rows, 1);
            let xv = &prev[x.index()];
            for r in 0..rows {
                out.data_mut()[r] = xv.row(r).iter().sum();
            }
        }
        self.commit(Op::RowSum(x))
    }

    /// Per-row gather: `out[r] = x[r, idx[r]]` → `r x 1`.
    pub fn gather_cols(&mut self, x: NodeId, idx: Arc<Vec<u32>>) -> NodeId {
        let rows = self.value(x).rows();
        assert_eq!(rows, idx.len(), "gather index length mismatch");
        {
            let (prev, out) = self.begin(rows, 1);
            let xv = &prev[x.index()];
            for r in 0..rows {
                out.data_mut()[r] = xv.at(r, idx[r] as usize);
            }
        }
        self.commit(Op::GatherCols(x, idx))
    }

    /// Elementwise maximum; the subgradient follows the larger input
    /// (ties go to `a`).
    pub fn maximum(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_op(a, b, Op::Maximum(a, b), f32::max)
    }

    /// Mean over all elements → scalar node.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        {
            let (prev, out) = self.begin(1, 1);
            out.data_mut()[0] = prev[x.index()].mean();
        }
        self.commit(Op::MeanAll(x))
    }

    /// Sum over all elements → scalar node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        {
            let (prev, out) = self.begin(1, 1);
            out.data_mut()[0] = prev[x.index()].sum();
        }
        self.commit(Op::SumAll(x))
    }

    /// `(r x c) ⊙ broadcast(v: r x 1)` — scales each row by a scalar.
    pub fn mul_col_broadcast(&mut self, x: NodeId, v: NodeId) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        let vv = self.value(v);
        assert_eq!(vv.cols(), 1, "broadcast vector must be r x 1");
        assert_eq!(vv.rows(), rows, "broadcast row mismatch");
        {
            let (prev, out) = self.begin(rows, cols);
            let xv = &prev[x.index()];
            let vv = &prev[v.index()];
            for r in 0..rows {
                let s = vv.at(r, 0);
                for (o, &xval) in out.row_mut(r).iter_mut().zip(xv.row(r)) {
                    *o = xval * s;
                }
            }
        }
        self.commit(Op::MulColBroadcast(x, v))
    }

    /// Embedding lookup: `out[r] = table[idx[r]]`, with the sentinel
    /// `u32::MAX` producing a zero row (the wildcard token for learnable
    /// encodings). Gradients scatter-add into `table`.
    pub fn embed_rows(&mut self, table: NodeId, idx: Arc<Vec<u32>>) -> NodeId {
        let cols = self.value(table).cols();
        {
            let (prev, out) = self.begin(idx.len(), cols);
            out.fill_zero();
            let t = &prev[table.index()];
            for (r, &i) in idx.iter().enumerate() {
                if i != u32::MAX {
                    debug_assert!((i as usize) < t.rows(), "embedding index out of range");
                    out.row_mut(r).copy_from_slice(t.row(i as usize));
                }
            }
        }
        self.commit(Op::EmbedRows(table, idx))
    }

    /// Average each group of `group` consecutive rows → `(r/group) x c`.
    ///
    /// Used by differentiable progressive sampling to average the density
    /// estimates of the `S` samples belonging to the same query.
    pub fn mean_row_groups(&mut self, x: NodeId, group: usize) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        assert!(group > 0 && rows.is_multiple_of(group), "row count not divisible by group");
        let out_rows = rows / group;
        {
            let (prev, out) = self.begin(out_rows, cols);
            out.fill_zero();
            let t = &prev[x.index()];
            for r in 0..rows {
                let orow = r / group;
                for c in 0..cols {
                    let v = t.at(r, c) / group as f32;
                    out.set(orow, c, out.at(orow, c) + v);
                }
            }
        }
        self.commit(Op::MeanRowGroups(x, group))
    }

    // ---- backward --------------------------------------------------------

    /// Reverse-mode differentiation from `loss` (must be `1 x 1`),
    /// accumulating parameter gradients into `grads`. The per-node gradient
    /// slots live in the workspace, so their backbone is reused across
    /// backwards on the same workspace.
    pub fn backward(&mut self, loss: NodeId, grads: &mut GradStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let ws = self.ws.get_mut();
        let n = ws.plan.ops.len();
        if ws.grads.len() < n {
            ws.grads.resize_with(n, || None);
        }
        for g in &mut ws.grads[..n] {
            *g = None;
        }
        let TapeWorkspace { plan, values, grads: node_grads, scratch } = ws;
        node_grads[loss.index()] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.index()).rev() {
            let Some(gy) = node_grads[idx].take() else { continue };
            match &plan.ops[idx] {
                Op::Input => {}
                Op::Param(pid) => {
                    grads.get_mut(*pid).add_assign(&gy);
                }
                Op::MatMul(a, b) => {
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    accumulate(node_grads, *a, gy.matmul_t(bv));
                    accumulate(node_grads, *b, av.t_matmul(&gy));
                }
                Op::MatMulMasked(a, b, mask) => {
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    zip_into(bv, mask, scratch, |w, m| w * m);
                    accumulate(node_grads, *a, gy.matmul_t(scratch));
                    let gb = av.t_matmul(&gy).zip(mask, |g, m| g * m);
                    accumulate(node_grads, *b, gb);
                }
                Op::AddBias(x, bias) => {
                    let mut gb = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for (o, g) in gb.row_mut(0).iter_mut().zip(gy.row(r)) {
                            *o += g;
                        }
                    }
                    accumulate(node_grads, *x, gy);
                    accumulate(node_grads, *bias, gb);
                }
                Op::Add(a, b) => {
                    accumulate(node_grads, *a, gy.clone());
                    accumulate(node_grads, *b, gy);
                }
                Op::Sub(a, b) => {
                    accumulate(node_grads, *a, gy.clone());
                    accumulate(node_grads, *b, gy.map(|g| -g));
                }
                Op::Mul(a, b) => {
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    accumulate(node_grads, *a, gy.zip(bv, |g, y| g * y));
                    accumulate(node_grads, *b, gy.zip(av, |g, x| g * x));
                }
                Op::Div(a, b) => {
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    accumulate(node_grads, *a, gy.zip(bv, |g, y| g / y));
                    let mut gb = gy.zip(av, |g, x| g * x);
                    gb = gb.zip(bv, |g, y| -g / (y * y));
                    accumulate(node_grads, *b, gb);
                }
                Op::MulScalar(x, c) => {
                    accumulate(node_grads, *x, gy.map(|g| g * c));
                }
                Op::AddScalar(x) => {
                    accumulate(node_grads, *x, gy);
                }
                Op::Relu(x) => {
                    let xv = &values[x.index()];
                    accumulate(node_grads, *x, gy.zip(xv, |g, v| if v > 0.0 { g } else { 0.0 }));
                }
                Op::Sigmoid(x) => {
                    let s = &values[idx];
                    accumulate(node_grads, *x, gy.zip(s, |g, s| g * s * (1.0 - s)));
                }
                Op::Exp(x) => {
                    let y = &values[idx];
                    accumulate(node_grads, *x, gy.zip(y, |g, y| g * y));
                }
                Op::Ln(x) => {
                    let xv = &values[x.index()];
                    accumulate(node_grads, *x, gy.zip(xv, |g, v| g / v));
                }
                Op::ClampMin(x, c) => {
                    let xv = &values[x.index()];
                    let c = *c;
                    accumulate(node_grads, *x, gy.zip(xv, |g, v| if v > c { g } else { 0.0 }));
                }
                Op::SliceCols(x, start, _end) => {
                    let xv = &values[x.index()];
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gx.set(r, start + c, gy.at(r, c));
                        }
                    }
                    accumulate(node_grads, *x, gx);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = values[p.index()].cols();
                        accumulate(node_grads, p, gy.slice_cols(off, off + w));
                        off += w;
                    }
                }
                Op::Softmax(x) => {
                    let s = &values[idx];
                    let mut gx = Tensor::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let srow = s.row(r);
                        let grow = gy.row(r);
                        let dot: f32 = srow.iter().zip(grow).map(|(a, b)| a * b).sum();
                        for (o, (sv, gv)) in gx.row_mut(r).iter_mut().zip(srow.iter().zip(grow)) {
                            *o = sv * (gv - dot);
                        }
                    }
                    accumulate(node_grads, *x, gx);
                }
                Op::LogSoftmax(x) => {
                    let ls = &values[idx];
                    let mut gx = Tensor::zeros(ls.rows(), ls.cols());
                    for r in 0..ls.rows() {
                        let grow = gy.row(r);
                        let gsum: f32 = grow.iter().sum();
                        let lsrow = ls.row(r);
                        for (o, (lsv, gv)) in gx.row_mut(r).iter_mut().zip(lsrow.iter().zip(grow)) {
                            *o = gv - lsv.exp() * gsum;
                        }
                    }
                    accumulate(node_grads, *x, gx);
                }
                Op::RowSum(x) => {
                    let xv = &values[x.index()];
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        let g = gy.at(r, 0);
                        for o in gx.row_mut(r) {
                            *o = g;
                        }
                    }
                    accumulate(node_grads, *x, gx);
                }
                Op::GatherCols(x, idxs) => {
                    let xv = &values[x.index()];
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        gx.set(r, idxs[r] as usize, gy.at(r, 0));
                    }
                    accumulate(node_grads, *x, gx);
                }
                Op::Maximum(a, b) => {
                    let av = &values[a.index()];
                    let bv = &values[b.index()];
                    let mut ga = Tensor::zeros(gy.rows(), gy.cols());
                    let mut gb = Tensor::zeros(gy.rows(), gy.cols());
                    for i in 0..gy.len() {
                        let g = gy.data()[i];
                        if av.data()[i] >= bv.data()[i] {
                            ga.data_mut()[i] = g;
                        } else {
                            gb.data_mut()[i] = g;
                        }
                    }
                    accumulate(node_grads, *a, ga);
                    accumulate(node_grads, *b, gb);
                }
                Op::MeanAll(x) => {
                    let xv = &values[x.index()];
                    let g = gy.scalar_value() / xv.len() as f32;
                    accumulate(node_grads, *x, Tensor::full(xv.rows(), xv.cols(), g));
                }
                Op::SumAll(x) => {
                    let xv = &values[x.index()];
                    let g = gy.scalar_value();
                    accumulate(node_grads, *x, Tensor::full(xv.rows(), xv.cols(), g));
                }
                Op::MulColBroadcast(x, v) => {
                    let xv = &values[x.index()];
                    let vv = &values[v.index()];
                    let mut gx = gy.clone();
                    let mut gv = Tensor::zeros(vv.rows(), 1);
                    for r in 0..gy.rows() {
                        let s = vv.at(r, 0);
                        let mut acc = 0.0f32;
                        for c in 0..gy.cols() {
                            acc += gy.at(r, c) * xv.at(r, c);
                        }
                        gv.set(r, 0, acc);
                        for o in gx.row_mut(r) {
                            *o *= s;
                        }
                    }
                    accumulate(node_grads, *x, gx);
                    accumulate(node_grads, *v, gv);
                }
                Op::EmbedRows(table, idx) => {
                    let tv = &values[table.index()];
                    let mut gt = Tensor::zeros(tv.rows(), tv.cols());
                    for (r, &i) in idx.iter().enumerate() {
                        if i != u32::MAX {
                            let src = gy.row(r);
                            for (o, g) in gt.row_mut(i as usize).iter_mut().zip(src) {
                                *o += g;
                            }
                        }
                    }
                    accumulate(node_grads, *table, gt);
                }
                Op::MeanRowGroups(x, group) => {
                    let xv = &values[x.index()];
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    let inv = 1.0 / *group as f32;
                    for r in 0..xv.rows() {
                        let orow = r / group;
                        for c in 0..xv.cols() {
                            gx.set(r, c, gy.at(orow, c) * inv);
                        }
                    }
                    accumulate(node_grads, *x, gx);
                }
            }
        }
    }
}

fn accumulate(node_grads: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
    match &mut node_grads[id.index()] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::tensor_alloc_count;

    fn store_with(values: &[(&str, Tensor)]) -> (ParamStore, Vec<ParamId>) {
        let mut s = ParamStore::new();
        let ids = values.iter().map(|(n, t)| s.add(*n, t.clone())).collect();
        (s, ids)
    }

    #[test]
    fn linear_regression_gradient() {
        // loss = mean((x @ w - y)^2); check dL/dw analytically.
        let (store, ids) = store_with(&[("w", Tensor::from_vec(2, 1, vec![0.5, -0.25]))]);
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 0.5]));
        let y = tape.input(Tensor::from_vec(3, 1, vec![1.0, 0.0, -1.0]));
        let w = tape.param(ids[0]);
        let pred = tape.matmul(x, w);
        let err = tape.sub(pred, y);
        let sq = tape.mul(err, err);
        let loss = tape.mean_all(sq);

        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);

        // Analytic gradient: (2/n) * X^T (Xw - y)
        let xv = Tensor::from_vec(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 0.5]);
        let wv = Tensor::from_vec(2, 1, vec![0.5, -0.25]);
        let yv = Tensor::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let resid = xv.matmul(&wv).zip(&yv, |p, t| p - t);
        let expect = xv.t_matmul(&resid).map(|v| v * 2.0 / 3.0);
        assert!(grads.get(ids[0]).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn param_used_twice_accumulates() {
        let (store, ids) = store_with(&[("w", Tensor::scalar(3.0))]);
        let mut tape = Tape::new(&store);
        let w1 = tape.param(ids[0]);
        let w2 = tape.param(ids[0]);
        let prod = tape.mul(w1, w2); // w^2 → d/dw = 2w = 6
        let loss = tape.mean_all(prod);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        assert!((grads.get(ids[0]).scalar_value() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn maximum_routes_gradient() {
        let (store, ids) = store_with(&[
            ("a", Tensor::from_vec(1, 2, vec![2.0, -1.0])),
            ("b", Tensor::from_vec(1, 2, vec![1.0, 5.0])),
        ]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let b = tape.param(ids[1]);
        let m = tape.maximum(a, b);
        let loss = tape.sum_all(m);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        assert_eq!(grads.get(ids[0]).data(), &[1.0, 0.0]);
        assert_eq!(grads.get(ids[1]).data(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_gradient_sums_to_zero() {
        // d(softmax)/dx rows always sum to 0 when upstream grad is one-hot.
        let (store, ids) = store_with(&[("x", Tensor::from_vec(1, 4, vec![0.1, 0.9, -0.4, 2.0]))]);
        let mut tape = Tape::new(&store);
        let x = tape.param(ids[0]);
        let s = tape.softmax(x);
        let g = tape.gather_cols(s, Arc::new(vec![2]));
        let loss = tape.sum_all(g);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        let total: f32 = grads.get(ids[0]).data().iter().sum();
        assert!(total.abs() < 1e-6, "softmax grad rows must sum to 0, got {total}");
    }

    #[test]
    fn embed_rows_looks_up_and_scatter_adds() {
        let (store, ids) =
            store_with(&[("emb", Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))]);
        let mut tape = Tape::new(&store);
        let e = tape.param(ids[0]);
        // Rows 2, 0, 0, wildcard.
        let out = tape.embed_rows(e, Arc::new(vec![2, 0, 0, u32::MAX]));
        assert_eq!(tape.value(out).data(), &[5.0, 6.0, 1.0, 2.0, 1.0, 2.0, 0.0, 0.0]);
        let loss = tape.sum_all(out);
        let mut grads = GradStore::zeros_like(&store);
        tape.backward(loss, &mut grads);
        // Row 0 used twice → gradient 2; row 1 unused → 0; row 2 once → 1.
        assert_eq!(grads.get(ids[0]).data(), &[2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_row_groups_averages() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(4, 1, vec![1.0, 3.0, 10.0, 20.0]));
        let m = tape.mean_row_groups(x, 2);
        assert_eq!(tape.value(m).data(), &[2.0, 15.0]);
    }

    #[test]
    fn grad_store_clipping() {
        let (store, ids) = store_with(&[("w", Tensor::from_vec(1, 2, vec![3.0, 4.0]))]);
        let mut grads = GradStore::zeros_like(&store);
        grads.get_mut(ids[0]).data_mut().copy_from_slice(&[3.0, 4.0]);
        assert!((grads.l2_norm() - 5.0).abs() < 1e-6);
        grads.scale(0.5);
        assert_eq!(grads.get(ids[0]).data(), &[1.5, 2.0]);
    }

    #[test]
    fn l2_norm_accumulates_in_f64() {
        // One dominant squared term (1e8) plus 10k unit terms: f32
        // accumulation would absorb every +1.0 into the 1e8 (1e8 + 1 == 1e8
        // in f32), reporting sqrt(1e8) = 10000 exactly. The f64 path keeps
        // the tail: sqrt(1e8 + 1e4) ≈ 10000.49998.
        let n = 10_001;
        let mut data = vec![1.0f32; n];
        data[0] = 1.0e4;
        let (store, ids) = store_with(&[("w", Tensor::from_vec(1, n, data))]);
        let mut grads = GradStore::zeros_like(&store);
        grads.get_mut(ids[0]).data_mut().copy_from_slice(store.get(ids[0]).data());
        let norm = grads.l2_norm_f64();
        let expect = (1.0e8f64 + 1.0e4).sqrt();
        assert!((norm - expect).abs() < 1e-6, "f64 norm {norm} vs {expect}");
        assert!(norm > 10000.4, "f32 accumulation would have collapsed to 10000");
    }

    /// The same graph builder used for the reuse tests below.
    fn build_graph(tape: &mut Tape<'_>, ids: &[ParamId], x: &Tensor, mask: &Arc<Tensor>) -> NodeId {
        let xn = tape.input_ref(x);
        let w = tape.param(ids[0]);
        let b = tape.param(ids[1]);
        let h = tape.matmul_masked(xn, w, Arc::clone(mask));
        let h = tape.add_bias(h, b);
        let h = tape.relu(h);
        let s = tape.softmax(h);
        let l = tape.ln(s);
        tape.mean_all(l)
    }

    #[test]
    fn workspace_reuse_is_bit_exact() {
        let (store, ids) = store_with(&[
            ("w", Tensor::from_vec(3, 4, (0..12).map(|v| v as f32 * 0.17 - 0.9).collect())),
            ("b", Tensor::from_vec(1, 4, vec![0.1, -0.2, 0.0, 0.3])),
        ]);
        let x = Tensor::from_vec(2, 3, vec![1.0, -0.5, 2.0, 0.0, 0.25, -1.5]);
        let mask = Arc::new(Tensor::from_vec(3, 4, vec![1.0; 12]).map(|_| 1.0));

        // Reference: fresh owned-workspace tape.
        let mut ref_tape = Tape::new(&store);
        let ref_loss = build_graph(&mut ref_tape, &ids, &x, &mask);
        let ref_val = ref_tape.value(ref_loss).clone();
        let mut ref_grads = GradStore::zeros_like(&store);
        ref_tape.backward(ref_loss, &mut ref_grads);

        // Same graph three times over one reused workspace.
        let mut ws = TapeWorkspace::new();
        for round in 0..3 {
            let mut tape = Tape::with_workspace(&store, &mut ws);
            let loss = build_graph(&mut tape, &ids, &x, &mask);
            assert_eq!(
                tape.value(loss).data(),
                ref_val.data(),
                "round {round}: forward must be bit-exact"
            );
            let mut grads = GradStore::zeros_like(&store);
            tape.backward(loss, &mut grads);
            for &id in &ids {
                assert_eq!(
                    grads.get(id).data(),
                    ref_grads.get(id).data(),
                    "round {round}: grads must be bit-exact"
                );
            }
        }
    }

    #[test]
    fn warmed_workspace_forward_allocates_nothing() {
        let (store, ids) = store_with(&[
            ("w", Tensor::from_vec(3, 4, (0..12).map(|v| v as f32 * 0.17 - 0.9).collect())),
            ("b", Tensor::from_vec(1, 4, vec![0.1, -0.2, 0.0, 0.3])),
        ]);
        let x = Tensor::from_vec(2, 3, vec![1.0, -0.5, 2.0, 0.0, 0.25, -1.5]);
        let mask = Arc::new(Tensor::full(3, 4, 1.0));
        let mut ws = TapeWorkspace::new();
        // Warm up: first build allocates the arena buffers.
        {
            let mut tape = Tape::with_workspace(&store, &mut ws);
            build_graph(&mut tape, &ids, &x, &mask);
        }
        let warmed = ws.num_value_buffers();
        let before = tensor_alloc_count();
        for _ in 0..5 {
            let mut tape = Tape::with_workspace(&store, &mut ws);
            build_graph(&mut tape, &ids, &x, &mask);
        }
        assert_eq!(
            tensor_alloc_count(),
            before,
            "steady-state forwards on a warmed workspace must not allocate tensors"
        );
        assert_eq!(ws.num_value_buffers(), warmed, "arena must not grow");
    }

    #[test]
    fn workspace_survives_shape_changes() {
        let (store, ids) = store_with(&[("w", Tensor::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.25]))]);
        let mut ws = TapeWorkspace::new();
        for rows in [1usize, 4, 2, 8, 3] {
            let x = Tensor::full(rows, 2, 0.5);
            let mut tape = Tape::with_workspace(&store, &mut ws);
            let xn = tape.input_ref(&x);
            let w = tape.param(ids[0]);
            let y = tape.matmul(xn, w);
            let loss = tape.mean_all(y);
            // Oracle on a fresh tape.
            let mut fresh = Tape::new(&store);
            let xf = fresh.input_ref(&x);
            let wf = fresh.param(ids[0]);
            let yf = fresh.matmul(xf, wf);
            let lf = fresh.mean_all(yf);
            assert_eq!(tape.value(loss).data(), fresh.value(lf).data());
            let (mut g1, mut g2) = (GradStore::zeros_like(&store), GradStore::zeros_like(&store));
            tape.backward(loss, &mut g1);
            fresh.backward(lf, &mut g2);
            assert_eq!(g1.get(ids[0]).data(), g2.get(ids[0]).data());
        }
    }

    #[test]
    fn input_builders_match_input() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let z = tape.input_zeros(2, 3);
        assert_eq!(tape.value(z), &Tensor::zeros(2, 3));
        let f = tape.input_full(2, 2, 1.5);
        assert_eq!(tape.value(f), &Tensor::full(2, 2, 1.5));
        let w = tape.input_with(1, 3, |t| t.data_mut().copy_from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(tape.value(w).data(), &[1.0, 2.0, 3.0]);
    }
}
