//! Dense, row-major, two-dimensional `f32` tensors.
//!
//! Everything in the UAE model operates on batches of encoded rows, so a
//! two-dimensional tensor (`rows x cols`) is the only shape the engine needs.
//! Vectors are represented as `1 x c` or `r x 1` tensors, scalars as `1 x 1`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::pool;
use crate::simd;

/// Number of tensor-buffer heap allocations performed since process start
/// (fresh buffers and capacity growth; buffer reuse via [`Tensor::resize`]
/// within capacity does not count). Used by the zero-allocation regression
/// tests: after warm-up, steady-state inference must not move this counter.
static TENSOR_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the tensor-layer allocation counter.
pub fn tensor_alloc_count() -> u64 {
    TENSOR_ALLOCS.load(Ordering::Relaxed)
}

#[inline]
fn note_alloc(elems: usize) {
    if elems > 0 {
        TENSOR_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A dense row-major matrix of `f32` values.
#[derive(PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        note_alloc(self.data.len());
        Tensor { rows: self.rows, cols: self.cols, data: self.data.clone() }
    }
}

/// The empty `0 x 0` tensor — no heap allocation. Lets buffers be
/// `std::mem::take`n out of pools and scratch structs.
impl Default for Tensor {
    fn default() -> Self {
        Tensor { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        note_alloc(rows * cols);
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        note_alloc(rows * cols);
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        note_alloc(data.len());
        Tensor { rows, cols, data }
    }

    /// Reshape in place, reusing the existing buffer. Grows the buffer only
    /// when the new element count exceeds its capacity; existing element
    /// contents are **unspecified** afterwards — callers must overwrite
    /// every element (or call [`Tensor::fill_zero`]).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if n > self.data.capacity() {
            note_alloc(n);
        }
        self.data.resize(n, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Become a shape-matched copy of `src`, reusing the existing buffer
    /// when capacity allows.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(1, 1, vec![value])
    }

    /// A `r x 1` column vector.
    pub fn col_vec(values: &[f32]) -> Self {
        Tensor::from_vec(values.len(), 1, values.to_vec())
    }

    /// A `1 x c` row vector.
    pub fn row_vec(values: &[f32]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on non-scalar tensor");
        self.data[0]
    }

    /// Matrix product `self @ other`.
    ///
    /// Uses an `i-k-j` loop order so the innermost loop streams contiguous
    /// memory from both the output row and `other`'s row, which the compiler
    /// auto-vectorizes well.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out, false);
        out
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul shape mismatch: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let flops = 2 * self.rows * self.cols * other.cols;
        if flops >= PAR_FLOP_THRESHOLD && self.rows >= 2 {
            // Parallel over row chunks. Each shard writes its partial into a
            // disjoint slice of one flat buffer (no per-shard Tensor
            // ownership or clones), reduced in chunk order at the end so the
            // summation order matches the serial path chunk-for-chunk.
            let threads = pool::pool_threads();
            let chunk = self.rows.div_ceil(threads);
            let n_chunks = self.rows.div_ceil(chunk);
            let out_len = self.cols * other.cols;
            let mut partials = vec![0.0f32; n_chunks * out_len];
            let base = pool::SendPtr(partials.as_mut_ptr());
            pool::parallel_for(n_chunks, |ci| {
                // Rebind deliberately: capture the whole `SendPtr`, not `base.0`.
                #[allow(clippy::redundant_locals)]
                let base = base;
                let start = ci * chunk;
                let end = (start + chunk).min(self.rows);
                // SAFETY: each pool index writes exactly one disjoint
                // `out_len` slice, and `partials` outlives the blocking
                // `parallel_for` call.
                let slice =
                    unsafe { std::slice::from_raw_parts_mut(base.0.add(ci * out_len), out_len) };
                self.t_matmul_range_into(other, start, end, slice);
            });
            let mut out = Tensor::zeros(self.cols, other.cols);
            for p in partials.chunks(out_len) {
                for (o, &v) in out.data.iter_mut().zip(p) {
                    *o += v;
                }
            }
            return out;
        }
        self.t_matmul_range(other, 0, self.rows)
    }

    fn t_matmul_range(&self, other: &Tensor, start: usize, end: usize) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.t_matmul_range_into(other, start, end, &mut out.data);
        out
    }

    /// `out[i][j] += sum_{r in start..end} self[r][i] * other[r][j]`, with
    /// `out` a zeroed `cols x other.cols` row-major slice. The slice form
    /// lets pool shards target disjoint regions of one caller-owned buffer.
    fn t_matmul_range_into(&self, other: &Tensor, start: usize, end: usize, out: &mut [f32]) {
        let ocols = other.cols;
        for r in start..end {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o = &mut out[i * ocols..(i + 1) * ocols];
                for (oj, &b) in o.iter_mut().zip(b_row) {
                    *oj += a * b;
                }
            }
        }
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        let flops = 2 * self.rows * self.cols * other.rows;
        if flops >= PAR_FLOP_THRESHOLD && self.rows >= 2 {
            let threads = pool::pool_threads();
            let chunk = self.rows.div_ceil(threads);
            let a = self;
            let ocols = other.rows;
            let n_chunks = self.rows.div_ceil(chunk);
            let base = pool::SendPtr(out.data.as_mut_ptr());
            pool::parallel_for(n_chunks, |ci| {
                // Rebind deliberately: without it the 2021-edition closure
                // captures the raw `base.0` field (not `Send`) instead of
                // the whole `SendPtr`.
                #[allow(clippy::redundant_locals)]
                // Rebind deliberately: capture the whole `SendPtr`, not `base.0`.
                #[allow(clippy::redundant_locals)]
                let base = base;
                let row_start = ci * chunk;
                let row_end = (row_start + chunk).min(a.rows);
                // SAFETY: chunks are disjoint row ranges of `out`, each
                // written by exactly one pool index, and `out` outlives the
                // blocking `parallel_for` call.
                let orows = unsafe {
                    std::slice::from_raw_parts_mut(
                        base.0.add(row_start * ocols),
                        (row_end - row_start) * ocols,
                    )
                };
                for (local_r, orow) in orows.chunks_mut(ocols).enumerate() {
                    a.matmul_t_row(other, row_start + local_r, orow);
                }
            });
            return out;
        }
        let ocols = other.rows;
        for r in 0..self.rows {
            let orow = &mut out.data[r * ocols..(r + 1) * ocols];
            self.matmul_t_row(other, r, orow);
        }
        out
    }

    fn matmul_t_row(&self, other: &Tensor, r: usize, orow: &mut [f32]) {
        let a_row = self.row(r);
        for (c, oc) in orow.iter_mut().enumerate() {
            let b_row = other.row(c);
            let mut acc = 0.0f32;
            for (a, b) in a_row.iter().zip(b_row) {
                acc += a * b;
            }
            *oc = acc;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.at(r, c));
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        note_alloc(self.data.len());
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise map in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip into a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        note_alloc(self.data.len());
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Copy of columns `start..end`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let w = end - start;
        let mut out = Tensor::zeros(self.rows, w);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Horizontal concatenation of tensors sharing a row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let orow = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols row mismatch");
                orow[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Row-wise numerically stable softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_rows_in_place();
        out
    }

    /// Row-wise numerically stable softmax, in place (no allocation).
    pub fn softmax_rows_in_place(&mut self) {
        for r in 0..self.rows {
            softmax_in_place(self.row_mut(r));
        }
    }

    /// Copy of rows `start..end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        note_alloc((end - start) * self.cols);
        Tensor {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// New tensor whose row `i` is `self.row(idx[i])`. Used by the batched
    /// inference engine to broadcast deduplicated forward results back to
    /// their sample rows and to compact away dead samples.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (o, &src) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(src));
        }
        out
    }

    /// Row-wise numerically stable log-softmax.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            log_softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Sum across columns, producing an `r x 1` tensor.
    pub fn row_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element in each row.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Largest absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

/// FLOP count above which matmuls split across pool workers. Dispatching a
/// job onto the persistent pool costs a queue push plus a condvar wake
/// (single-digit microseconds) instead of the tens of microseconds the old
/// per-call `std::thread::scope` spawns paid, so the break-even point sits
/// much lower than the seed's 4M-FLOP threshold.
const PAR_FLOP_THRESHOLD: usize = 500_000;

/// `out (+)= a @ b`.
///
/// `accumulate` contract: when **false**, `out` is resized to
/// `a.rows x b.cols` (reusing its buffer), zeroed, and overwritten with the
/// product. When **true**, `out` must *already* be exactly
/// `a.rows x b.cols` with every element initialized — the product is added
/// on top, and nothing else about `out` changes. Callers may not rely on
/// accumulation into a stale-shaped or uninitialized buffer.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor, accumulate: bool) {
    matmul_masked_into(a, b, None, a.cols, out, accumulate)
}

/// `out (+)= a[:, ..k_limit] @ b[..k_limit, :]`, with `b` additionally
/// treated as zero left of `starts[k]` on row `k` when `starts` is given.
///
/// This is the mask-aware product behind the packed ResMADE forward:
/// `uae-core` permutes hidden units by MADE degree at snapshot time so each
/// masked weight row is zero on a contiguous column *prefix* (encoded in
/// `starts`) and each output head touches only a contiguous row prefix of
/// the hidden state (encoded by slicing `a`'s columns via `k_limit`). The
/// inner loops then run dense over the live panel instead of testing a
/// per-element zero-skip. Same `accumulate` contract as [`matmul_into`].
pub fn matmul_masked_into(
    a: &Tensor,
    b: &Tensor,
    starts: Option<&[u32]>,
    k_limit: usize,
    out: &mut Tensor,
    accumulate: bool,
) {
    assert_eq!(a.cols, b.rows);
    assert!(k_limit <= a.cols);
    if let Some(st) = starts {
        assert!(st.len() >= k_limit);
    }
    if accumulate {
        assert_eq!(out.rows, a.rows);
        assert_eq!(out.cols, b.cols);
    } else {
        out.resize(a.rows, b.cols);
        out.fill_zero();
    }
    let flops = 2 * a.rows * k_limit * b.cols;
    if flops >= PAR_FLOP_THRESHOLD && a.rows >= 2 {
        let threads = pool::pool_threads();
        let chunk = a.rows.div_ceil(threads);
        let bcols = b.cols;
        let n_chunks = a.rows.div_ceil(chunk);
        let base = pool::SendPtr(out.data.as_mut_ptr());
        pool::parallel_for(n_chunks, |ci| {
            // Rebind deliberately: capture the whole `SendPtr`, not `base.0`.
            #[allow(clippy::redundant_locals)]
            let base = base;
            let row_start = ci * chunk;
            let row_end = (row_start + chunk).min(a.rows);
            // SAFETY: chunks are disjoint row ranges of `out`, each written
            // by exactly one pool index, and `out` outlives the blocking
            // `parallel_for` call.
            let orows = unsafe {
                std::slice::from_raw_parts_mut(
                    base.0.add(row_start * bcols),
                    (row_end - row_start) * bcols,
                )
            };
            matmul_rows(a, b, starts, k_limit, row_start, orows);
        });
        return;
    }
    let orows = &mut out.data[..];
    matmul_rows(a, b, starts, k_limit, 0, orows);
}

fn matmul_rows(
    a: &Tensor,
    b: &Tensor,
    starts: Option<&[u32]>,
    k_limit: usize,
    row_start: usize,
    out_rows: &mut [f32],
) {
    let be = simd::backend();
    let bcols = b.cols;
    for (local_i, out_row) in out_rows.chunks_mut(bcols).enumerate() {
        let a_row = &a.row(row_start + local_i)[..k_limit];
        simd::matmul_row_with(be, a_row, &b.data, bcols, starts, out_row);
    }
}

/// `out = x + bias`, with `bias` shaped `1 x c` broadcast over rows.
pub fn add_bias_into(x: &Tensor, bias: &Tensor, out: &mut Tensor) {
    debug_assert_eq!(bias.rows(), 1);
    debug_assert_eq!(bias.cols(), x.cols());
    out.resize(x.rows, x.cols);
    let be = simd::backend();
    let b = bias.row(0);
    for r in 0..x.rows {
        simd::add_bias_into_row_with(be, x.row(r), b, out.row_mut(r));
    }
}

/// In-place `t += bias`, with `bias` shaped `1 x c` broadcast over rows.
pub fn add_bias_assign(t: &mut Tensor, bias: &Tensor) {
    debug_assert_eq!(bias.rows(), 1);
    debug_assert_eq!(bias.cols(), t.cols());
    let be = simd::backend();
    for r in 0..t.rows {
        simd::add_bias_row_with(be, t.row_mut(r), bias.row(0));
    }
}

/// In-place fused `t = relu(t + bias)` — the hidden-layer epilogue.
pub fn add_bias_relu_assign(t: &mut Tensor, bias: &Tensor) {
    debug_assert_eq!(bias.rows(), 1);
    debug_assert_eq!(bias.cols(), t.cols());
    let be = simd::backend();
    for r in 0..t.rows {
        simd::add_bias_relu_row_with(be, t.row_mut(r), bias.row(0));
    }
}

/// `out = relu(x)`.
pub fn relu_into(x: &Tensor, out: &mut Tensor) {
    map_into(x, out, |v| v.max(0.0));
}

/// `out = softmax_rows(x)`: a single fused max/exp/normalize pass per row,
/// computed directly into `out` (no `copy_from` + in-place second pass).
/// Bit-identical to [`Tensor::softmax_rows`] on every backend — both
/// dispatch to the same per-row kernel.
pub fn softmax_rows_into(x: &Tensor, out: &mut Tensor) {
    out.resize(x.rows, x.cols);
    let be = simd::backend();
    for r in 0..x.rows {
        simd::softmax_into_with(be, x.row(r), out.row_mut(r));
    }
}

/// `out = f(x)` elementwise, reusing `out`'s buffer. Unrolled 4-wide so the
/// closure call chain exposes independent element work to the scheduler;
/// per-element arithmetic is unchanged.
pub fn map_into(x: &Tensor, out: &mut Tensor, f: impl Fn(f32) -> f32) {
    out.resize(x.rows, x.cols);
    let mut oc = out.data.chunks_exact_mut(4);
    let mut xc = x.data.chunks_exact(4);
    for (os, xs) in (&mut oc).zip(&mut xc) {
        os[0] = f(xs[0]);
        os[1] = f(xs[1]);
        os[2] = f(xs[2]);
        os[3] = f(xs[3]);
    }
    for (o, &v) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o = f(v);
    }
}

/// `out = f(a, b)` elementwise, reusing `out`'s buffer. Unrolled like
/// [`map_into`].
///
/// # Panics
/// Panics on shape mismatch.
pub fn zip_into(a: &Tensor, b: &Tensor, out: &mut Tensor, f: impl Fn(f32, f32) -> f32) {
    assert_eq!(a.shape(), b.shape(), "zip_into shape mismatch");
    out.resize(a.rows, a.cols);
    let mut oc = out.data.chunks_exact_mut(4);
    let mut ac = a.data.chunks_exact(4);
    let mut bc = b.data.chunks_exact(4);
    for ((os, xs), ys) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        os[0] = f(xs[0], ys[0]);
        os[1] = f(xs[1], ys[1]);
        os[2] = f(xs[2], ys[2]);
        os[3] = f(xs[3], ys[3]);
    }
    for ((o, &x), &y) in oc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *o = f(x, y);
    }
}

/// Numerically stable in-place softmax of a single slice. A fully `-inf`
/// row becomes uniform (callers treat it as an impossible region).
pub fn softmax_in_place(xs: &mut [f32]) {
    simd::softmax_slice(xs);
}

/// Numerically stable in-place log-softmax of a single slice.
pub fn log_softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter() {
        sum += (*x - max).exp();
    }
    let log_z = max + sum.ln();
    for x in xs.iter_mut() {
        *x -= log_z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut eye = Tensor::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        let a = Tensor::from_vec(3, 3, (0..9).map(|x| x as f32).collect());
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32 * 0.5).collect());
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|x| x as f32 * 0.25 - 1.0).collect());
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(s.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_negative_mask() {
        let t = Tensor::from_vec(1, 3, vec![0.0, f32::NEG_INFINITY, 0.0]);
        let s = t.softmax_rows();
        assert!((s.at(0, 0) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(0, 1), 0.0);
    }

    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let t = Tensor::full(1, 4, f32::NEG_INFINITY);
        let s = t.softmax_rows();
        for c in 0..4 {
            assert!((s.at(0, c) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::from_vec(1, 4, vec![0.3, -1.2, 2.0, 0.0]);
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows();
        for c in 0..4 {
            assert!((ls.at(0, c) - s.at(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let t = Tensor::from_vec(2, 5, (0..10).map(|x| x as f32).collect());
        let a = t.slice_cols(0, 2);
        let b = t.slice_cols(2, 5);
        let back = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(back, t);
    }

    #[test]
    fn row_argmax_picks_first_max() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 5.0, 5.0, -1.0, -2.0, -0.5]);
        assert_eq!(t.row_argmax(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_match_allocating_ops() {
        let x = Tensor::from_vec(3, 4, (0..12).map(|v| v as f32 * 0.3 - 1.5).collect());
        let bias = Tensor::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.0]);
        let mut out = Tensor::default();

        add_bias_into(&x, &bias, &mut out);
        let mut expect = x.clone();
        add_bias_assign(&mut expect, &bias);
        assert_eq!(out, expect);

        relu_into(&x, &mut out);
        assert_eq!(out, x.map(|v| v.max(0.0)));

        softmax_rows_into(&x, &mut out);
        assert_eq!(out, x.softmax_rows());

        zip_into(&x, &expect, &mut out, |a, b| a * b - 0.5);
        assert_eq!(out, x.zip(&expect, |a, b| a * b - 0.5));
    }

    #[test]
    fn resize_within_capacity_does_not_allocate() {
        let mut t = Tensor::zeros(8, 8);
        let before = tensor_alloc_count();
        t.resize(4, 4); // shrink: reuse
        t.resize(8, 8); // regrow within capacity: reuse
        t.resize(2, 16); // reshape, same element count: reuse
        assert_eq!(tensor_alloc_count(), before, "capacity reuse must not allocate");
        t.resize(16, 16); // genuine growth
        assert_eq!(tensor_alloc_count(), before + 1);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let mut dst = Tensor::zeros(4, 4);
        let before = tensor_alloc_count();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(tensor_alloc_count(), before, "copy_from within capacity must reuse");
    }
}
