//! Property-based tests of the tensor algebra and of autodiff itself:
//! linear-algebra laws must hold for the kernels (including the
//! thread-parallel paths) and analytic gradients must match finite
//! differences on randomly generated graphs.

use proptest::prelude::*;
use uae_tensor::check::gradient_check;
use uae_tensor::{ParamStore, Tensor};

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Distributivity: A(B + C) == AB + AC.
    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(4, 5),
        bc in (1..=6usize).prop_flat_map(|k| {
            (proptest::collection::vec(-2.0f32..2.0, 5 * k),
             proptest::collection::vec(-2.0f32..2.0, 5 * k),
             Just(k))
        }),
    ) {
        let (bv, cv, k) = bc;
        let b = Tensor::from_vec(5, k, bv);
        let c = Tensor::from_vec(5, k, cv);
        let sum = b.zip(&c, |x, y| x + y);
        let left = a.matmul(&sum);
        let right = {
            let mut ab = a.matmul(&b);
            ab.add_assign(&a.matmul(&c));
            ab
        };
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    /// Transpose is an involution and (AB)^T == B^T A^T.
    #[test]
    fn transpose_laws(a in arb_tensor(5, 4), bv in proptest::collection::vec(-2.0f32..2.0, 4 * 3)) {
        let b = Tensor::from_vec(4, 3, bv);
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    /// The fused transposed kernels equal their naive counterparts.
    #[test]
    fn fused_transpose_kernels(
        a in arb_tensor(7, 5),
        bv in proptest::collection::vec(-2.0f32..2.0, 7 * 4),
    ) {
        let b = Tensor::from_vec(7, 4, bv);
        prop_assert!(a.t_matmul(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-4);
        let c = Tensor::from_vec(4, 5, (0..20).map(|x| x as f32 * 0.1 - 1.0).collect());
        prop_assert!(a.matmul_t(&c).max_abs_diff(&a.matmul(&c.transpose())) < 1e-4);
    }

    /// Softmax is invariant to adding a per-row constant and always forms
    /// a probability vector.
    #[test]
    fn softmax_shift_invariance(t in arb_tensor(4, 6), shift in -5.0f32..5.0) {
        let shifted = t.map(|v| v + shift);
        let (s1, s2) = (t.softmax_rows(), shifted.softmax_rows());
        prop_assert!(s1.max_abs_diff(&s2) < 1e-4);
        for r in 0..s1.rows() {
            let sum: f32 = s1.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s1.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Analytic gradients of a random two-layer graph match finite
    /// differences (the op set used by ResMADE).
    #[test]
    fn random_graph_gradients_match_numeric(
        wv in proptest::collection::vec(-0.9f32..0.9, 3 * 4),
        bv in proptest::collection::vec(-0.5f32..0.5, 4),
        xv in proptest::collection::vec(-1.0f32..1.0, 2 * 3),
    ) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(3, 4, wv));
        let b = store.add("b", Tensor::from_vec(1, 4, bv));
        let x = Tensor::from_vec(2, 3, xv);
        let res = gradient_check(&mut store, 1e-3, |tape| {
            let xn = tape.input(x.clone());
            let wn = tape.param(w);
            let bn = tape.param(b);
            let h = tape.matmul(xn, wn);
            let h = tape.add_bias(h, bn);
            // Sigmoid keeps the graph smooth so central differences are
            // reliable at every sampled point (ReLU kinks are separately
            // covered by the deterministic unit tests).
            let h = tape.sigmoid(h);
            let s = tape.softmax(h);
            let sq = tape.mul(s, s);
            tape.mean_all(sq)
        });
        // f32 central differences bottom out near 1e-4-magnitude gradients;
        // systematic backward errors would be O(1).
        prop_assert!(res.max_rel_err < 0.12, "rel err {}", res.max_rel_err);
    }

    /// Row-argmax picks an actual maximum.
    #[test]
    fn argmax_is_maximal(t in arb_tensor(5, 7)) {
        for (r, &idx) in t.row_argmax().iter().enumerate() {
            let row = t.row(r);
            prop_assert!(row.iter().all(|&v| v <= row[idx]));
        }
    }
}
