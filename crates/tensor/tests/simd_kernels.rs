//! Property tests pitting every SIMD / quantized kernel against the Exact
//! scalar oracle across adversarial shapes: odd lengths, remainder lanes
//! (`cols % 8 != 0`), denormals and negative zero.
//!
//! These tests use the explicit `_with(Backend, ...)` kernel entry points
//! rather than the process-global backend selector, so they are immune to
//! test-thread interleaving and run identically on any host; the AVX2
//! assertions are simply skipped where the ISA is absent.

use proptest::prelude::*;
use uae_tensor::quant::{self, QuantMatrix};
use uae_tensor::simd::{self, avx2_available};
use uae_tensor::{Backend, Tensor};

/// Sprinkle IEEE edge cases over a bland random vector: exact zeros,
/// negative zero, denormals of both signs, and a value small enough that
/// products with it are themselves denormal.
fn with_specials(mut v: Vec<f32>) -> Vec<f32> {
    const SPECIALS: [f32; 6] = [0.0, -0.0, 1.0e-41, -1.0e-41, 1.2e-38, -2.5e-20];
    for (i, x) in v.iter_mut().enumerate() {
        if i % 5 == 3 {
            *x = SPECIALS[(i / 5) % SPECIALS.len()];
        }
    }
    v
}

fn arb_vec(len: core::ops::RangeInclusive<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len).prop_map(with_specials)
}

/// AVX2 FMA reassociates the k-reduction, so the bound scales with the
/// reduction depth, not the (possibly cancelled-to-tiny) result.
fn close_for_reduction(x: f32, y: f32, k: usize) -> bool {
    let abs = (x - y).abs();
    abs < 1e-6 * (k as f32).max(8.0) || abs / x.abs().max(y.abs()) < 1e-5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Portable matmul is bit-identical to Exact (unrolling does not
    /// reorder any per-element operation); AVX2 is ULP-bounded.
    #[test]
    fn matmul_row_matches_oracle(
        dims in (1usize..=33, 1usize..=37),
        seed_a in arb_vec(33..=33),
        seed_b in arb_vec(33 * 37..=33 * 37),
    ) {
        let (k, n) = dims;
        let a = &seed_a[..k];
        let b: Vec<f32> = seed_b[..k * n].to_vec();

        let mut exact = vec![0.0f32; n];
        simd::matmul_row_with(Backend::Exact, a, &b, n, None, &mut exact);

        let mut portable = vec![0.0f32; n];
        simd::matmul_row_with(Backend::Portable, a, &b, n, None, &mut portable);
        prop_assert_eq!(&portable, &exact);

        if avx2_available() {
            let mut vect = vec![0.0f32; n];
            simd::matmul_row_with(Backend::Avx2, a, &b, n, None, &mut vect);
            for j in 0..n {
                prop_assert!(
                    close_for_reduction(vect[j], exact[j], k),
                    "col {}: avx2 {} vs exact {} (k={})", j, vect[j], exact[j], k
                );
            }
        }
    }

    /// Column-pruned panels: a start-offset run over zero-prefixed rows
    /// equals the dense run on every backend — the skipped region is
    /// structurally zero, so skipping it changes no arithmetic.
    #[test]
    fn matmul_row_start_offsets_equal_dense(
        dims in (1usize..=19, 1usize..=21),
        seed_a in arb_vec(19..=19),
        seed_b in arb_vec(19 * 21..=19 * 21),
        seed_s in proptest::collection::vec(0usize..=21, 19..=19),
    ) {
        let (k, n) = dims;
        let a = &seed_a[..k];
        let starts: Vec<u32> = seed_s[..k].iter().map(|&s| (s % (n + 1)) as u32).collect();
        let mut b: Vec<f32> = seed_b[..k * n].to_vec();
        for (row, &s) in starts.iter().enumerate() {
            b[row * n..row * n + s as usize].fill(0.0);
        }

        for be in [Backend::Exact, Backend::Portable, Backend::Avx2] {
            if be == Backend::Avx2 && !avx2_available() {
                continue;
            }
            let mut dense = vec![0.0f32; n];
            simd::matmul_row_with(be, a, &b, n, None, &mut dense);
            let mut pruned = vec![0.0f32; n];
            simd::matmul_row_with(be, a, &b, n, Some(&starts), &mut pruned);
            prop_assert_eq!(&pruned, &dense, "backend {:?}", be);
        }
    }

    /// All three bias epilogues are element-wise, hence bit-identical
    /// across every backend, remainder lanes and denormals included.
    #[test]
    fn bias_epilogues_bit_identical(
        n in 1usize..=41,
        seed_x in arb_vec(41..=41),
        seed_b in arb_vec(41..=41),
    ) {
        let (x, bias) = (&seed_x[..n], &seed_b[..n]);
        let mut oracle_into = vec![0.0f32; n];
        simd::add_bias_into_row_with(Backend::Exact, x, bias, &mut oracle_into);
        let mut oracle_add = x.to_vec();
        simd::add_bias_row_with(Backend::Exact, &mut oracle_add, bias);
        let mut oracle_relu = x.to_vec();
        simd::add_bias_relu_row_with(Backend::Exact, &mut oracle_relu, bias);

        for be in [Backend::Portable, Backend::Avx2] {
            if be == Backend::Avx2 && !avx2_available() {
                continue;
            }
            let mut into = vec![0.0f32; n];
            simd::add_bias_into_row_with(be, x, bias, &mut into);
            prop_assert_eq!(&into, &oracle_into, "into {:?}", be);
            let mut add = x.to_vec();
            simd::add_bias_row_with(be, &mut add, bias);
            prop_assert_eq!(&add, &oracle_add, "assign {:?}", be);
            let mut relu = x.to_vec();
            simd::add_bias_relu_row_with(be, &mut relu, bias);
            prop_assert_eq!(&relu, &oracle_relu, "relu {:?}", be);
        }
    }

    /// Fused softmax: probabilities on every backend, ULP-bounded against
    /// the Exact oracle, and the in-place variant bit-matches the
    /// out-of-place one per backend (the seq/batch parity contract).
    #[test]
    fn softmax_matches_oracle(
        n in 1usize..=37,
        seed in proptest::collection::vec(-30.0f32..30.0, 37..=37),
        mask_every in 0usize..=4,
    ) {
        let mut src = seed[..n].to_vec();
        if mask_every > 0 {
            // Masked logits are -inf; their probability must be *exactly* 0.
            for x in src.iter_mut().step_by(mask_every + 1) {
                *x = f32::NEG_INFINITY;
            }
        }
        let mut oracle = vec![0.0f32; n];
        simd::softmax_into_with(Backend::Exact, &src, &mut oracle);

        for be in [Backend::Portable, Backend::Avx2] {
            if be == Backend::Avx2 && !avx2_available() {
                continue;
            }
            let mut out = vec![0.0f32; n];
            simd::softmax_into_with(be, &src, &mut out);
            let mut inplace = src.clone();
            simd::softmax_slice_with(be, &mut inplace);
            prop_assert_eq!(&inplace, &out, "in-place vs into {:?}", be);

            let sum: f32 = out.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "sum {} on {:?}", sum, be);
            for j in 0..n {
                // A fully masked row degenerates to uniform by contract;
                // otherwise a -inf lane must be *exactly* zero.
                if src[j] == f32::NEG_INFINITY && src.iter().any(|&x| x != f32::NEG_INFINITY) {
                    prop_assert_eq!(out[j], 0.0, "masked lane {:?}", be);
                }
                prop_assert!(
                    (out[j] - oracle[j]).abs() < 1e-5,
                    "lane {}: {} vs {} on {:?}", j, out[j], oracle[j], be
                );
            }
        }
    }

    /// Int8 panel matmul: bit-identical across backends (integer
    /// accumulation is exact; dequant uses one shared op order) and within
    /// the quantization-noise envelope of the f32 oracle.
    #[test]
    fn qmatmul_row_matches_f32_within_quant_noise(
        dims in (1usize..=33, 1usize..=37),
        seed_a in arb_vec(33..=33),
        seed_w in arb_vec(33 * 37..=33 * 37),
    ) {
        let (k, n) = dims;
        let a = &seed_a[..k];
        let w = Tensor::from_vec(k, n, seed_w[..k * n].to_vec());
        let m = QuantMatrix::quantize(&w, k);

        let mut qa = vec![0i16; m.padded_k()];
        let a_scale = quant::quantize_row(a, &mut qa);

        let mut scalar = vec![0.0f32; n];
        quant::qmatmul_row_with(Backend::Exact, &qa, &m, a_scale, &mut scalar);
        if avx2_available() {
            let mut vect = vec![0.0f32; n];
            quant::qmatmul_row_with(Backend::Avx2, &qa, &m, a_scale, &mut vect);
            prop_assert_eq!(&vect, &scalar);
        }

        let amax = a.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let mut exact = vec![0.0f32; n];
        simd::matmul_row_with(Backend::Exact, a, w.data(), n, None, &mut exact);
        for j in 0..n {
            let wmax = (0..k).map(|r| w.at(r, j).abs()).fold(0.0f32, f32::max);
            let tol = 1e-6 + (k as f32) * (amax * wmax.max(1.0) + wmax * amax.max(1.0)) / 127.0;
            prop_assert!(
                (scalar[j] - exact[j]).abs() <= tol,
                "col {}: int8 {} vs f32 {} (tol {})", j, scalar[j], exact[j], tol
            );
        }
    }

    /// Dynamic row quantization round-trips within half a step, flushes
    /// denormal-only and zero rows to scale 0, and zero-pads the tail.
    #[test]
    fn quantize_row_roundtrip(
        n in 1usize..=41,
        seed in arb_vec(41..=41),
        pad in 0usize..=3,
    ) {
        let x = &seed[..n];
        let mut qa = vec![i16::MAX; n + pad];
        let scale = quant::quantize_row(x, &mut qa);
        let amax = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if amax == 0.0 {
            prop_assert_eq!(scale, 0.0);
            prop_assert!(qa.iter().all(|&q| q == 0));
        } else {
            for (j, &v) in x.iter().enumerate() {
                prop_assert!(qa[j].unsigned_abs() <= 127);
                let back = qa[j] as f32 * scale;
                prop_assert!(
                    (back - v).abs() <= 0.5 * scale + 1e-12,
                    "lane {}: {} -> {} (scale {})", j, v, back, scale
                );
            }
            prop_assert!(qa[n..].iter().all(|&q| q == 0), "tail not zero-padded");
        }
    }

    /// The AVX2 quantizer is bit-identical to the scalar one: same i16
    /// codes, same scale, across lengths spanning the vector body, the
    /// 16-lane remainder and the small-row scalar fallback.
    #[test]
    fn quantize_row_backends_bit_identical(
        n in 1usize..=67,
        seed in arb_vec(67..=67),
    ) {
        if avx2_available() {
            let x = &seed[..n];
            let mut q_s = vec![i16::MAX; n + 2];
            let mut q_v = vec![i16::MAX; n + 2];
            let s_s = quant::quantize_row_with(Backend::Exact, x, &mut q_s);
            let s_v = quant::quantize_row_with(Backend::Avx2, x, &mut q_v);
            prop_assert_eq!(s_s.to_bits(), s_v.to_bits(), "scale mismatch");
            prop_assert_eq!(&q_s, &q_v);
        }
    }
}

/// Deterministic sweep of the rounding tie neighborhoods: with the row max
/// pinned to 127.0 the quantizer's inverse scale is exactly 1.0, so every
/// other lane is rounded verbatim — including exact `k + 0.5` ties (round
/// half away from zero) and the representable values one ulp either side.
/// The AVX2 path must reproduce the scalar `f32::round` bit-for-bit here.
#[test]
fn quantize_tie_neighborhoods_bit_identical() {
    if !avx2_available() {
        return;
    }
    let mut x = vec![127.0f32];
    for k in 0..127 {
        let tie = k as f32 + 0.5;
        for v in [tie, f32::from_bits(tie.to_bits() - 1), f32::from_bits(tie.to_bits() + 1)] {
            x.push(v);
            x.push(-v);
        }
    }
    x.extend([0.0, -0.0, 1.0e-41, -1.0e-41, f32::from_bits(0x3EFF_FFFF)]);
    let mut q_s = vec![0i16; x.len()];
    let mut q_v = vec![0i16; x.len()];
    let s_s = quant::quantize_row_with(Backend::Exact, &x, &mut q_s);
    let s_v = quant::quantize_row_with(Backend::Avx2, &x, &mut q_v);
    assert_eq!(s_s.to_bits(), s_v.to_bits());
    assert_eq!(q_s, q_v);
    // Spot-check the half-away semantics themselves (inv scale is 1.0).
    assert_eq!(q_s[1], 1, "0.5 must round away from zero");
    assert_eq!(q_s[2], -1, "-0.5 must round away from zero");
}
