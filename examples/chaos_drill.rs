//! Full-stack crash-safety chaos drill: serve → drift → promote, killed
//! at **every** injected disk-fault point, restarted via cold-start
//! recovery, and checked bit-for-bit against a never-crashed reference.
//!
//! The drill enumerates the pipeline's durable writes with a counting
//! [`DiskFaults`] reference run (manifest rewrites, journal header,
//! intent/commit appends, checkpoint writes), then replays the whole
//! pipeline once per `(write index, fault kind)` pair:
//!
//! * **io-error** — the write fails cleanly before touching disk;
//! * **torn-write** — a truncated prefix lands at the destination;
//! * **bit-flip** — the write "succeeds" with one silently corrupted
//!   byte (caught only by checksums at read time).
//!
//! A failed promotion persist is treated as a crash (the pipeline stops
//! on the spot). `recover_registry` then replays the write-ahead journal
//! against the tenant manifest and must republish the last provably-good
//! version: answers bit-identical to the reference run at that version,
//! corrupt artifacts quarantined (never deleted), recovery time bounded.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! ```
//!
//! Per-case telemetry goes to `target/chaos_drill.jsonl`, recovery events
//! to `target/chaos_recovery.jsonl`, and the summary to
//! `target/BENCH_recovery.json`. Exits nonzero on any violated invariant.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use uae::core::{
    DiskFaultKind, DiskFaultPlan, DiskFaults, JsonlObserver, OnlineConfig, OnlineTrainer,
    QueryPool, ResMadeConfig, RoundOutcome, TrainConfig, Uae, UaeConfig,
};
use uae::data::{census_like, Table};
use uae::query::{generate_workload, label_queries, CardEstimator, LabeledQuery, WorkloadSpec};
use uae::server::{recover_registry, Registry};

const TENANT: &str = "census";
const TARGET_PROMOTIONS: usize = 2;
/// Generous cold-start bound: recovery loads at most a handful of small
/// checkpoints — anything past this is a hang, not a slow disk.
const MAX_RECOVER_MS: f64 = 60_000.0;

fn seed_model(table: &Table) -> Uae {
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut model = Uae::new(table, cfg);
    model.train_data(1);
    model
}

/// Fixed probe workload answered on a deterministic clone — the
/// bit-identity witness compared across crash/recover boundaries.
fn probe(model: &Uae, table: &Table) -> Vec<f64> {
    let queries = generate_workload(table, &WorkloadSpec::random(16, 0x9e0be), &HashSet::new());
    let clone = model.clone();
    queries.iter().map(|lq| clone.estimate_card(&lq.query)).collect()
}

/// One publication the pipeline made: its version, the model, and
/// whether the write-ahead sequence proved it durable.
struct Publication {
    version: u64,
    model: Uae,
    durable: bool,
}

/// What one serve→drift→promote run did before finishing or "crashing".
#[derive(Default)]
struct RunResult {
    published: Vec<Publication>,
    /// A promotion persist failed — the run stopped there (crash point).
    crashed: bool,
    /// The very first durable attach failed — nothing ever registered.
    setup_failed: bool,
}

impl RunResult {
    /// The last version the journal can prove (0 = the seed).
    fn survivor(&self) -> u64 {
        self.published.iter().rev().find(|p| p.durable).map_or(0, |p| p.version)
    }
}

/// The deterministic pipeline under test: attach a registry to `dir`,
/// register the tenant, drive trainer rounds over the label stream and
/// publish every verdict, then (absent a crash) do the clean-shutdown
/// flush. Identical inputs ⇒ identical write sequence, which is what
/// makes "fault at write index w" a reproducible crash point.
fn run_pipeline(
    dir: &Path,
    faults: Option<Arc<DiskFaults>>,
    seed: &Uae,
    stream: &[LabeledQuery],
) -> RunResult {
    let mut out = RunResult::default();
    let registry = Arc::new(Registry::new());
    if registry.persist_to(dir, faults.clone()).is_err() {
        out.setup_failed = true;
        return out;
    }
    registry.register(TENANT, seed.clone());
    let mut trainer = OnlineTrainer::new(
        seed,
        OnlineConfig {
            trigger_fresh: 12,
            holdout: 8,
            query_epochs: 2,
            checkpoint_dir: Some(dir.to_path_buf()),
            label: TENANT.to_owned(),
            disk: faults.clone(),
            ..OnlineConfig::default()
        },
    );
    let pool = QueryPool::new(1024);
    let mut current = seed.clone();
    let mut promotions = 0usize;
    for (i, chunk) in stream.chunks(24).enumerate() {
        pool.extend(chunk.iter().cloned());
        match trainer.round(&pool, &current, i as u64 * 1_000_000).outcome {
            RoundOutcome::Promoted { model, version, checkpoint_path, .. } => {
                let ck = checkpoint_path
                    .as_deref()
                    .and_then(|p| p.file_name())
                    .map(|n| n.to_string_lossy().into_owned());
                let durable = ck.is_some();
                let _ = registry.publish(TENANT, model.clone(), Some(version), ck);
                out.published.push(Publication { version, model: model.clone(), durable });
                current = model;
                promotions += 1;
                if promotions >= TARGET_PROMOTIONS {
                    break;
                }
            }
            RoundOutcome::RolledBack { model, version, checkpoint_path, .. } => {
                let ck = checkpoint_path
                    .as_deref()
                    .and_then(|p| p.file_name())
                    .map(|n| n.to_string_lossy().into_owned());
                let durable = ck.is_some();
                let _ = registry.publish(TENANT, model.clone(), Some(version), ck);
                out.published.push(Publication { version, model: model.clone(), durable });
                current = model;
            }
            RoundOutcome::PersistFailed { .. } => {
                out.crashed = true;
                break;
            }
            RoundOutcome::Idle | RoundOutcome::Rejected(_) => {}
        }
    }
    if !out.crashed {
        let _ = trainer.finalize();
        let _ = registry.sync_manifest();
    }
    out
}

/// Every file under `dir` (names only — the drill keeps state flat).
fn file_set(dir: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            out.insert(e.file_name().to_string_lossy().into_owned());
        }
    }
    out
}

fn fresh_dir(root: &Path, tag: &str) -> PathBuf {
    let dir = root.join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create drill dir");
    dir
}

struct CaseOutcome {
    ok: bool,
    recovered_version: u64,
    recover_ms: f64,
    quarantined: usize,
    detail: String,
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    root: &Path,
    tag: &str,
    plan: DiskFaultPlan,
    kind: Option<DiskFaultKind>,
    seed: &Uae,
    table: &Table,
    stream: &[LabeledQuery],
    answers: &BTreeMap<u64, Vec<f64>>,
    final_version: u64,
    recovery_log: &mut JsonlObserver,
) -> CaseOutcome {
    let dir = fresh_dir(root, tag);
    let faults = (!plan.is_inert()).then(|| Arc::new(DiskFaults::new(plan)));
    let run = run_pipeline(&dir, faults, seed, stream);

    let before = file_set(&dir);
    let mut builder = |name: &str| (name == TENANT).then(|| seed.clone());
    let (registry, report) = match recover_registry(&dir, &mut builder, None, Some(recovery_log)) {
        Ok(r) => r,
        Err(e) => {
            return CaseOutcome {
                ok: false,
                recovered_version: 0,
                recover_ms: 0.0,
                quarantined: 0,
                detail: format!("recover_registry failed: {e}"),
            }
        }
    };
    let after = file_set(&dir);

    let mut failures: Vec<String> = Vec::new();

    // Invariant: quarantine renames, never deletes — every pre-recovery
    // file survives, at its own name or under a `.quarantine` suffix.
    for f in &before {
        if !after.iter().any(|g| g == f || g.starts_with(&format!("{f}.quarantine"))) {
            failures.push(format!("file {f} vanished during recovery"));
        }
    }

    // Invariant: bounded unavailability.
    if report.recover_ms > MAX_RECOVER_MS {
        failures
            .push(format!("recovery took {:.1} ms (bound {MAX_RECOVER_MS})", report.recover_ms));
    }

    let survivor = run.survivor();
    let recovered_version = if run.setup_failed {
        // The very first manifest write failed before the tenant was ever
        // registered: there is legitimately no tenant to recover (at most
        // a torn zero-tenant manifest to quarantine).
        if !report.tenants.is_empty() {
            failures.push(format!(
                "expected an empty fleet from an empty directory, got {} tenant(s)",
                report.tenants.len()
            ));
        }
        0
    } else {
        match report.tenants.iter().find(|t| t.tenant == TENANT) {
            None => {
                failures.push("tenant was not recovered".to_owned());
                0
            }
            Some(rec) => {
                match kind {
                    // Clean failures stop the pipeline at the fault: the
                    // journal proves exactly the survivor version.
                    None | Some(DiskFaultKind::IoError) | Some(DiskFaultKind::TornWrite) => {
                        if rec.version != survivor {
                            failures.push(format!(
                                "recovered v{} but the last committed version is v{survivor}",
                                rec.version
                            ));
                        }
                    }
                    // A silent flip corrupts exactly one artifact of a
                    // completed run: recovery lands on the final version,
                    // or one before it when the flip hit that version's
                    // own checkpoint (which must then be quarantined).
                    Some(DiskFaultKind::BitFlip) => {
                        let hit_final_ckpt = report.quarantined.iter().any(|p| {
                            p.to_string_lossy().contains(&format!("{TENANT}_v{final_version}.uaec"))
                        });
                        let expect = if hit_final_ckpt { final_version - 1 } else { final_version };
                        if rec.version != expect {
                            failures.push(format!(
                                "bit-flip case recovered v{} (expected v{expect}, \
                                 final v{final_version}, flipped-final-ckpt {hit_final_ckpt})",
                                rec.version
                            ));
                        }
                    }
                }
                // Invariant: the recovered fleet answers bit-identically
                // to the never-crashed reference at the surviving version.
                let tenant = registry.get(TENANT).expect("tenant registered by recovery");
                match answers.get(&rec.version) {
                    None => failures.push(format!(
                        "recovered v{} is not a version the reference ever published",
                        rec.version
                    )),
                    Some(expected) => {
                        let got = probe(&tenant.model(), table);
                        if &got != expected {
                            failures.push(format!(
                                "recovered v{} answers diverge from the reference",
                                rec.version
                            ));
                        }
                    }
                }
                rec.version
            }
        }
    };

    std::fs::remove_dir_all(&dir).ok();
    CaseOutcome {
        ok: failures.is_empty(),
        recovered_version,
        recover_ms: report.recover_ms,
        quarantined: report.quarantined.len(),
        detail: failures.join("; "),
    }
}

fn main() {
    let target = Path::new("target");
    std::fs::create_dir_all(target).expect("create target/");
    let root = target.join("chaos_drill_state");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create drill root");

    let table = census_like(400, 0x10ea5);
    let seed = seed_model(&table);
    let queries = generate_workload(&table, &WorkloadSpec::random(200, 0xfeed), &HashSet::new())
        .into_iter()
        .map(|lq| lq.query)
        .collect();
    let stream = label_queries(&table, queries);

    // ---- Reference run: enumerate the write points, record the truth.
    let ref_dir = fresh_dir(&root, "reference");
    let counter = Arc::new(DiskFaults::counting());
    let reference = run_pipeline(&ref_dir, Some(counter.clone()), &seed, &stream);
    assert!(!reference.crashed && !reference.setup_failed, "reference run must not crash");
    let write_points = counter.writes();
    let final_version = reference.survivor();
    assert!(
        reference.published.iter().filter(|p| p.durable).count() >= TARGET_PROMOTIONS,
        "the drift recipe must drive at least {TARGET_PROMOTIONS} durable promotions"
    );
    let mut answers: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    answers.insert(0, probe(&seed, &table));
    for p in &reference.published {
        answers.insert(p.version, probe(&p.model, &table));
    }
    println!(
        "[chaos] reference: {} durable write points, final version v{final_version}, \
         {} published version(s)",
        write_points,
        reference.published.len()
    );

    let mut recovery_log = JsonlObserver::create(target.join("chaos_recovery.jsonl"), "chaos")
        .expect("open recovery telemetry");
    let mut case_log = std::io::BufWriter::new(
        std::fs::File::create(target.join("chaos_drill.jsonl")).expect("open case telemetry"),
    );

    let mut cases = 0usize;
    let mut failed = 0usize;
    let mut recover_ms_sum = 0.0f64;
    let mut recover_ms_max = 0.0f64;

    let record = |case_log: &mut std::io::BufWriter<std::fs::File>,
                  fault: &str,
                  write_index: i64,
                  outcome: &CaseOutcome| {
        writeln!(
            case_log,
            "{{\"event\":\"chaos_case\",\"fault\":\"{fault}\",\"write_index\":{write_index},\
             \"recovered_version\":{},\"recover_ms\":{:.3},\"quarantined\":{},\"ok\":{}{}}}",
            outcome.recovered_version,
            outcome.recover_ms,
            outcome.quarantined,
            outcome.ok,
            if outcome.detail.is_empty() {
                String::new()
            } else {
                format!(",\"detail\":{:?}", outcome.detail)
            }
        )
        .expect("write case line");
    };

    // ---- Case 0: clean shutdown, no faults — recover must be a no-op
    // republish of the final version.
    {
        let outcome = run_case(
            &root,
            "clean",
            DiskFaultPlan::default(),
            None,
            &seed,
            &table,
            &stream,
            &answers,
            final_version,
            &mut recovery_log,
        );
        cases += 1;
        recover_ms_sum += outcome.recover_ms;
        recover_ms_max = recover_ms_max.max(outcome.recover_ms);
        let clean_ok = outcome.ok && outcome.quarantined == 0;
        if !clean_ok {
            failed += 1;
            eprintln!(
                "[chaos] FAIL clean shutdown: {} (quarantined {})",
                outcome.detail, outcome.quarantined
            );
        }
        println!(
            "[chaos] clean shutdown → v{} in {:.1} ms {}",
            outcome.recovered_version,
            outcome.recover_ms,
            if clean_ok { "ok" } else { "FAIL" }
        );
        record(&mut case_log, "none", -1, &outcome);
    }

    // ---- The matrix: every write index × every fault kind.
    for w in 0..write_points {
        for kind in [DiskFaultKind::IoError, DiskFaultKind::TornWrite, DiskFaultKind::BitFlip] {
            let plan = match kind {
                DiskFaultKind::IoError => {
                    DiskFaultPlan { io_error: vec![w], ..DiskFaultPlan::default() }
                }
                DiskFaultKind::TornWrite => {
                    DiskFaultPlan { torn_write: vec![w], ..DiskFaultPlan::default() }
                }
                DiskFaultKind::BitFlip => {
                    DiskFaultPlan { bit_flip: vec![(w, 13, 0x20)], ..DiskFaultPlan::default() }
                }
            };
            let outcome = run_case(
                &root,
                &format!("{kind}_{w}"),
                plan,
                Some(kind),
                &seed,
                &table,
                &stream,
                &answers,
                final_version,
                &mut recovery_log,
            );
            cases += 1;
            recover_ms_sum += outcome.recover_ms;
            recover_ms_max = recover_ms_max.max(outcome.recover_ms);
            if !outcome.ok {
                failed += 1;
                eprintln!("[chaos] FAIL {kind} @ write {w}: {}", outcome.detail);
            }
            record(&mut case_log, &kind.to_string(), w as i64, &outcome);
        }
    }
    case_log.flush().expect("flush case telemetry");

    let mean_ms = recover_ms_sum / cases as f64;
    let summary = format!(
        "{{\"bench\":\"chaos_drill\",\"cases\":{cases},\"failures\":{failed},\
         \"write_points\":{write_points},\"final_version\":{final_version},\
         \"recover_ms_mean\":{mean_ms:.3},\"recover_ms_max\":{recover_ms_max:.3}}}\n"
    );
    std::fs::write(target.join("BENCH_recovery.json"), &summary).expect("write summary");
    println!(
        "[chaos] {cases} cases ({} fault points × 3 kinds + clean), {failed} failure(s); \
         recovery mean {mean_ms:.1} ms, max {recover_ms_max:.1} ms",
        write_points
    );

    let _ = std::fs::remove_dir_all(&root);
    if failed > 0 {
        std::process::exit(1);
    }
}
