//! Compare UAE against the classic estimator families on one dataset —
//! a miniature of the paper's Tables 2–4.
//!
//! ```sh
//! cargo run --release --example compare_estimators [dmv|census|kddcup98]
//! ```

use std::collections::HashSet;

use uae::core::{Uae, UaeConfig};
use uae::estimators::{
    BayesNetEstimator, KdeEstimator, SamplingEstimator, SpnConfig, SpnEstimator,
};
use uae::query::estimator::format_size;
use uae::query::{
    default_bounded_column, evaluate, generate_workload, CardEstimator, WorkloadSpec,
};

fn main() {
    let dataset = std::env::args().nth(1).unwrap_or_else(|| "census".to_owned());
    let table = uae::data::dataset_by_name(&dataset, 8_000, 3)
        .unwrap_or_else(|| panic!("unknown dataset {dataset} (try dmv, census, kddcup98)"));
    println!(
        "dataset {dataset}: skewness {:.2}, NCIE {:.3}",
        uae::data::stats::dataset_skewness(&table),
        uae::data::stats::ncie(&table, 8)
    );

    let col = default_bounded_column(&table);
    let train = generate_workload(&table, &WorkloadSpec::in_workload(col, 250, 1), &HashSet::new());
    let test = generate_workload(
        &table,
        &WorkloadSpec::in_workload(col, 60, 2),
        &uae::query::fingerprints(&train),
    );

    println!(
        "\n{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "model", "size", "mean", "median", "95th", "max"
    );
    let report = |est: &dyn CardEstimator| {
        let ev = evaluate(est, &test);
        println!(
            "{:<12} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            ev.name,
            format_size(ev.size_bytes),
            ev.errors.mean,
            ev.errors.median,
            ev.errors.p95,
            ev.errors.max
        );
    };

    report(&SamplingEstimator::new(&table, 0.05, 9));
    report(&BayesNetEstimator::new(&table, 128));
    report(&KdeEstimator::new(&table, 0.05, 9));
    report(&SpnEstimator::new(&table, &SpnConfig::default()));

    let mut naru = Uae::new(&table, UaeConfig::default()).with_name("Naru");
    naru.train_data(6);
    report(&naru);

    let mut hybrid = Uae::new(&table, UaeConfig::default());
    hybrid.train_hybrid(&train, 6);
    report(&hybrid);
}
