//! Bring your own data: load a CSV, train UAE (with learnable embeddings
//! for the wide column), checkpoint the weights, and estimate.
//!
//! ```sh
//! cargo run --release --example custom_csv [path/to/file.csv]
//! ```
//!
//! Without an argument a small synthetic orders.csv is generated in-memory
//! so the example is self-contained.

use std::collections::HashSet;
use std::io::Cursor;

use uae::core::{Uae, UaeConfig};
use uae::data::{table_from_csv, CsvOptions};
use uae::query::{default_bounded_column, evaluate, generate_workload, WorkloadSpec};

fn synthetic_csv() -> String {
    let mut csv = String::from("order_id,region,status,amount_bucket,priority\n");
    let mut state = 42u64;
    for i in 0..6_000 {
        state = uae::data::synth::splitmix64(state);
        let region = state % 12;
        let status =
            if region < 3 { "shipped" } else { ["new", "paid", "shipped"][(state % 3) as usize] };
        let amount = (state >> 8) % 40;
        let priority = u64::from(amount > 30);
        csv.push_str(&format!("{i},{region},{status},{amount},{priority}\n"));
    }
    csv
}

fn main() {
    let table = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("open csv");
            table_from_csv("custom", std::io::BufReader::new(file), &CsvOptions::default())
                .expect("parse csv")
        }
        None => table_from_csv("orders", Cursor::new(synthetic_csv()), &CsvOptions::default())
            .expect("parse csv"),
    };
    println!(
        "loaded `{}`: {} rows, columns: {:?}",
        table.name(),
        table.num_rows(),
        table
            .columns()
            .iter()
            .map(|c| format!("{}({})", c.name(), c.domain_size()))
            .collect::<Vec<_>>()
    );

    // Wide columns (like order_id) get factorized; inputs use learnable
    // embeddings (§4.6) — both are one config line each.
    let cfg = UaeConfig {
        factor_threshold: 2_000,
        encoding: uae::core::encoding::EncodingMode::Embedding { dim: 12 },
        ..UaeConfig::default()
    };

    let bounded = default_bounded_column(&table);
    let workload =
        generate_workload(&table, &WorkloadSpec::in_workload(bounded, 200, 1), &HashSet::new());
    let mut model = Uae::new(&table, cfg);
    println!("training ({} parameters, embeddings + factorization on)…", model.num_params());
    model.train_hybrid(&workload, 6);

    // Checkpoint round trip.
    let blob = model.save_weights();
    println!("checkpoint: {} bytes", blob.len());

    let test = generate_workload(
        &table,
        &WorkloadSpec::in_workload(bounded, 40, 2),
        &uae::query::fingerprints(&workload),
    );
    let ev = evaluate(&model, &test);
    println!(
        "q-error on {} unseen queries: mean {:.2}, median {:.2}, max {:.2}",
        ev.errors.count, ev.errors.mean, ev.errors.median, ev.errors.max
    );
}
