//! Join cardinality estimation (paper §4.6): train an autoregressive model
//! on a sample of the full outer join, then estimate multi-table join
//! queries — including subset joins via fanout scaling — and watch the
//! optimizer pick better plans with better estimates.
//!
//! ```sh
//! cargo run --release --example join_cardinality
//! ```

use std::collections::HashSet;

use uae::join::optimizer::{best_plan, plan_cost, PostgresLike, TruthEstimator};
use uae::join::{
    generate_join_workload, imdb_like, sample_outer_join, JoinCardEstimator, JoinExecutor,
    JoinQuery, JoinUae, JoinWorkloadSpec,
};
use uae::query::Predicate;

fn main() {
    let schema = imdb_like(3_000, 5);
    println!(
        "star schema: title({} rows) ⋈ movie_companies({}) ⋈ movie_info({}) ⋈ cast_info({})",
        schema.fact.num_rows(),
        schema.dims[0].content.num_rows(),
        schema.dims[1].content.num_rows(),
        schema.dims[2].content.num_rows(),
    );
    println!("full outer join size: {}", schema.outer_join_size());

    // Train UAE hybrid on focused join queries.
    let train =
        generate_join_workload(&schema, &JoinWorkloadSpec::focused(0, 150, 1), &HashSet::new());
    let sample = sample_outer_join(&schema, 6_000, 32, 2);
    let mut model = JoinUae::new(sample, uae::core::UaeConfig::default());
    println!("training on the join sample + {} labeled queries…", train.len());
    model.train_data(4);
    model.train_hybrid(&train, 3);

    // Estimate a few joins, including a subset join (fanout scaling).
    let exec = JoinExecutor::new(&schema);
    let queries = [
        JoinQuery { dims: vec![0, 1, 2], ..Default::default() },
        JoinQuery {
            dims: vec![0, 1, 2],
            fact_preds: vec![Predicate::ge(0, 90i64)],
            dim_preds: vec![(1, Predicate::ge(1, 7i64))],
        },
        JoinQuery { dims: vec![1], fact_preds: vec![Predicate::le(0, 60i64)], dim_preds: vec![] },
    ];
    println!("\n{:<55} {:>10} {:>12}", "join query", "true", "estimate");
    for q in &queries {
        println!(
            "{:<55} {:>10} {:>12.1}",
            format!("{} dims, {} preds", q.dims.len(), q.fact_preds.len() + q.dim_preds.len()),
            exec.cardinality(q),
            model.estimate_join_card(q)
        );
    }

    // Optimizer impact: pick plans under different estimators.
    let q = JoinQuery {
        dims: vec![0, 1, 2],
        fact_preds: vec![Predicate::ge(0, 95i64)],
        dim_preds: vec![(0, Predicate::eq(0, 1i64))],
    };
    let truth = TruthEstimator::new(&schema);
    let pg = PostgresLike::new(&schema);
    let pg_plan = best_plan(&q, &pg);
    let uae_plan = best_plan(&q, &model);
    println!("\noptimizer study on one 4-table join:");
    println!(
        "  PostgreSQL-like plan {:?} → true cost {:.0}",
        pg_plan.order,
        plan_cost(&q, &pg_plan, &truth)
    );
    println!(
        "  UAE plan            {:?} → true cost {:.0}",
        uae_plan.order,
        plan_cost(&q, &uae_plan, &truth)
    );
}
