//! The data-drift drill for the online-learning loop (ROADMAP item 2):
//! a tenant's table grows by a batch of fresh rows, the stale live
//! model's q-error jumps, and the background trainer — fed executed
//! queries with post-drift ground truth plus the staged rows — recovers
//! it through shadow-gated promotions, charting median q-error against
//! wall-clock as it goes.
//!
//! ```sh
//! cargo run --release --example online_drift_drill -- \
//!     --metrics-out target/online_promotions.jsonl
//! ```
//!
//! Promotion/gate/rollback telemetry (one JSONL line per event) goes to
//! `--metrics-out`; the recovery chart lands in
//! `target/BENCH_online.json`. CI runs this seeded, scaled-down drill
//! in both the default and `UAE_FORCE_SCALAR=1` modes and fails the
//! build if the post-drift median q-error does not recover to within
//! 1.5× of its pre-drift level.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use uae::core::{
    shadow_score, JsonlObserver, OnlineConfig, OnlineTrainer, QueryPool, ResMadeConfig,
    RoundOutcome, TrainConfig, Uae, UaeConfig,
};
use uae::data::census_like;
use uae::query::{generate_workload, label_queries, LabeledQuery, WorkloadSpec};
use uae::server::Registry;

const ROWS: usize = 1_000;
const TABLE_SEED: u64 = 0xd01f;
const RECOVERY_TARGET: f64 = 1.5;
const MAX_ROUNDS: usize = 16;

fn metrics_out() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            if let Some(p) = args.next() {
                return PathBuf::from(p);
            }
        } else if let Some(p) = a.strip_prefix("--metrics-out=") {
            return PathBuf::from(p);
        }
    }
    PathBuf::from("target/online_promotions.jsonl")
}

fn median_q(model: &Uae, eval: &[LabeledQuery]) -> f64 {
    shadow_score(model, eval).summary.median
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let metrics = metrics_out();
    if let Some(dir) = metrics.parent() {
        std::fs::create_dir_all(dir).ok();
    }

    // One generation, two partitions sharing dictionaries (§4.5:
    // incremental rows arrive in the same domain): the base table, and a
    // drift batch biased to the upper half of column 0's domain — a
    // covariate shift, not just more of the same rows.
    let big = census_like(4 * ROWS, TABLE_SEED);
    let base = big.take_rows(&(0..ROWS).collect::<Vec<_>>());
    let dom0 = big.column(0).domain_size() as u32;
    let shifted: Vec<usize> =
        (ROWS..4 * ROWS).filter(|&r| big.column(0).code(r) >= dom0 / 2).collect();
    let drift = big.take_rows(&shifted);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 32, blocks: 1, seed: 7 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut live = Uae::new(&base, cfg);
    println!("[drill] pretraining on {} rows…", base.num_rows());
    live.train_data(2);

    let registry = Arc::new(Registry::new());
    let tenant = registry.register("census", live.clone());

    // A fixed evaluation workload; its ground truth is re-labeled after
    // the drift, so the same queries measure the model before and after.
    let eval_queries: Vec<_> =
        generate_workload(&base, &WorkloadSpec::random(48, 0xe7a1), &HashSet::new())
            .into_iter()
            .map(|lq| lq.query)
            .collect();
    let eval_pre = label_queries(&base, eval_queries.clone());
    let pre_drift = median_q(&tenant.model(), &eval_pre);
    println!("[drill] pre-drift median q-error: {pre_drift:.3}");

    // Drift: the fresh batch lands in the tenant's table. Truth moves;
    // the live model still reasons over the old table.
    let mut full = base.clone();
    full.append(&drift);
    let eval_post = label_queries(&full, eval_queries);
    let stale = median_q(&tenant.model(), &eval_post);
    println!(
        "[drill] appended {} rows; stale median q-error: {stale:.3} ({:.2}x pre-drift)",
        drift.num_rows(),
        stale / pre_drift
    );

    // The online loop's two intake signals: staged drift rows and
    // executed queries with post-drift ground truth.
    let pool = QueryPool::new(512);
    pool.stage_rows(&drift);
    let label_stream = label_queries(
        &full,
        generate_workload(&full, &WorkloadSpec::random(MAX_ROUNDS * 20, 0x77aa), &HashSet::new())
            .into_iter()
            .map(|lq| lq.query)
            .collect(),
    );

    let mut trainer = OnlineTrainer::new(
        &tenant.model(),
        OnlineConfig {
            trigger_fresh: 16,
            holdout: 12,
            query_epochs: 3,
            data_epochs: 1,
            ..OnlineConfig::default()
        },
    );
    match JsonlObserver::create(&metrics, "online-drill") {
        Ok(obs) => trainer.set_observer(Box::new(obs)),
        Err(e) => eprintln!("warning: cannot open {}: {e}", metrics.display()),
    }

    let drift_at = Instant::now();
    let mut curve: Vec<(f64, u64, f64)> = Vec::new(); // (t_ms, version, median)
    let mut promotions = 0u64;
    let mut rollbacks = 0u64;
    println!("\n{:>6} {:>10} {:>12} {:>10}", "round", "t_ms", "outcome", "median-q");
    for (round, wave) in label_stream.chunks(20).take(MAX_ROUNDS).enumerate() {
        pool.extend(wave.iter().cloned());
        let now_ns = drift_at.elapsed().as_nanos() as u64;
        let report = trainer.round(&pool, &tenant.model(), now_ns);
        let outcome = match report.outcome {
            RoundOutcome::Idle => "idle".to_owned(),
            RoundOutcome::Rejected(d) => format!("rejected:{d}"),
            RoundOutcome::Promoted { model, version, .. } => {
                promotions += 1;
                registry.swap_model("census", model).expect("tenant registered");
                format!("promoted:v{version}")
            }
            RoundOutcome::RolledBack { model, version, .. } => {
                rollbacks += 1;
                registry.swap_model("census", model).expect("tenant registered");
                format!("rolledback:v{version}")
            }
            RoundOutcome::PersistFailed { version, .. } => format!("persistfail:v{version}"),
        };
        let t_ms = drift_at.elapsed().as_secs_f64() * 1e3;
        let median = median_q(&tenant.model(), &eval_post);
        curve.push((t_ms, trainer.version(), median));
        println!("{round:>6} {t_ms:>10.1} {outcome:>12} {median:>10.3}");
        if median <= RECOVERY_TARGET * pre_drift && promotions > 0 {
            break;
        }
    }

    let recovered = median_q(&tenant.model(), &eval_post);
    let ok = promotions > 0 && recovered <= RECOVERY_TARGET * pre_drift;
    println!(
        "\n[drill] recovered median q-error: {recovered:.3} ({:.2}x pre-drift, target {RECOVERY_TARGET}x) \
         after {promotions} promotion(s), {rollbacks} rollback(s)",
        recovered / pre_drift
    );

    let chart = PathBuf::from("target/BENCH_online.json");
    let points: Vec<String> = curve
        .iter()
        .map(|(t, v, m)| {
            format!("{{\"t_ms\": {:.1}, \"version\": {v}, \"median_q\": {}}}", t, json_f64(*m))
        })
        .collect();
    let json = format!
        ("{{\n  \"drill\": \"online_drift\",\n  \"rows_base\": {ROWS},\n  \"rows_drift\": {},\n  \"pre_drift_median_q\": {},\n  \"stale_median_q\": {},\n  \"recovered_median_q\": {},\n  \"recovery_target\": {RECOVERY_TARGET},\n  \"recovered\": {ok},\n  \"promotions\": {promotions},\n  \"rollbacks\": {rollbacks},\n  \"curve\": [\n    {}\n  ]\n}}\n",
        drift.num_rows(),
        json_f64(pre_drift),
        json_f64(stale),
        json_f64(recovered),
        points.join(",\n    "),
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write(&chart, json).expect("write recovery chart");
    println!("[drill] recovery chart: {}", chart.display());
    println!("[drill] telemetry: {}", metrics.display());

    drop(trainer); // flush the JSONL observer before the verdict
    if !ok {
        eprintln!(
            "[drill] FAILED: median q-error {recovered:.3} did not recover to \
             {RECOVERY_TARGET}x of pre-drift {pre_drift:.3}"
        );
        std::process::exit(1);
    }
}
