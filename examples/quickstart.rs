//! Quickstart: train UAE on a small table from both data and queries, then
//! estimate cardinalities.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::HashSet;

use uae::core::{Uae, UaeConfig};
use uae::query::{
    default_bounded_column, evaluate, generate_workload, CardEstimator, Executor, WorkloadSpec,
};

fn main() {
    // 1. A dataset: the Census-like generator (or build your own
    //    `uae::data::Table` from raw values).
    let table = uae::data::census_like(8_000, 42);
    println!(
        "table `{}`: {} rows x {} cols, domains {:?}",
        table.name(),
        table.num_rows(),
        table.num_cols(),
        &table.domain_sizes()[..5]
    );

    // 2. A workload with ground-truth labels (in a real system this is the
    //    query log; here we generate one following the paper's §5.1.2).
    let bounded = default_bounded_column(&table);
    let train =
        generate_workload(&table, &WorkloadSpec::in_workload(bounded, 300, 1), &HashSet::new());
    let test = generate_workload(
        &table,
        &WorkloadSpec::in_workload(bounded, 50, 2),
        &uae::query::fingerprints(&train),
    );

    // 3. Train the unified model from data AND queries (Algorithm 3).
    let mut model = Uae::new(&table, UaeConfig::default());
    println!("training hybrid UAE ({} parameters)…", model.num_params());
    let losses = model.train_hybrid(&train, 8);
    println!("per-epoch loss: {losses:.3?}");

    // 4. Estimate.
    let exec = Executor::new(&table);
    for lq in test.iter().take(5) {
        let est = model.estimate_card(&lq.query);
        println!(
            "{:60} true {:>6}  est {:>9.1}",
            lq.query.display(&table),
            exec.cardinality(&lq.query),
            est
        );
    }
    let ev = evaluate(&model, &test);
    println!(
        "\nq-error over {} test queries: mean {:.2}, median {:.2}, 95th {:.2}, max {:.2}",
        ev.errors.count, ev.errors.mean, ev.errors.median, ev.errors.p95, ev.errors.max
    );
}
