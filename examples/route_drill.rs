//! The model-fleet routing drill (ROADMAP item 4): two workload regimes
//! with *different* best estimators — dmv-like data under a correlated
//! query distribution that sits on value-level dependencies no
//! independence-factoring model can capture, and kddcup-like
//! high-dimensional mutually-independent data under narrow random
//! queries (the paper's finding (6) regime, where the autoregressive
//! tail degrades and SPN/histogram models thrive while tiny
//! selectivities starve row samples). A per-regime calibrated
//! [`Router`] must:
//!
//! 1. route **deterministically** — rebuilding the router from the same
//!    seeds and replaying the workload reproduces every decision and
//!    every fleet estimate bit for bit;
//! 2. be **no worse** than the best single estimator on each regime
//!    (median q-error);
//! 3. be **strictly better** than every single estimator on the blended
//!    (both regimes pooled) median *and* p95 q-error.
//!
//! Routing telemetry (one `routed` JSONL line per backend-served query)
//! goes to `--metrics-out`; CI runs the drill in the default and
//! `UAE_FORCE_SCALAR=1` modes and fails the build on any miss.
//!
//! ```sh
//! cargo run --release --example route_drill -- \
//!     --metrics-out target/routing_telemetry.jsonl
//! ```

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use uae::core::{
    JsonlObserver, ResMadeConfig, RouteConfig, RoutedFleet, Router, TrainConfig, Uae, UaeConfig,
};
use uae::data::{dmv_like, kddcup_like, Table};
use uae::estimators::{HistogramEstimator, SamplingEstimator, SpnConfig, SpnEstimator};
use uae::query::{
    fingerprints, generate_correlated_workload, generate_workload, q_error, CardEstimator,
    CorrelatedSpec, LabeledQuery, Query, WorkloadSpec,
};

const DMV_ROWS: usize = 2500;
const KDD_ROWS: usize = 2000;
const KDD_COLS: usize = 32;
const TRAIN_QUERIES: usize = 400;
const HOLDOUT_QUERIES: usize = 90;
const TEST_QUERIES: usize = 90;
/// "No worse" per regime, with a small grace for quantile noise at
/// drill scale.
const REGIME_GRACE: f64 = 1.05;
/// Per-regime uniform row-sample kept by the sampling backend,
/// mirroring uae-bench's per-dataset sample budgets: generous on the
/// small correlated table (moderate-selectivity queries are then
/// near-exact), starved on the wide table whose narrow queries defeat
/// sampling.
const DMV_SAMPLE_RATIO: f64 = 0.7;
const KDD_SAMPLE_RATIO: f64 = 0.02;

fn metrics_out() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            if let Some(p) = args.next() {
                return PathBuf::from(p);
            }
        } else if let Some(p) = a.strip_prefix("--metrics-out=") {
            return PathBuf::from(p);
        }
    }
    PathBuf::from("target/routing_telemetry.jsonl")
}

fn quantile(errs: &[f64], q: f64) -> f64 {
    if errs.is_empty() {
        return f64::INFINITY;
    }
    let mut s = errs.to_vec();
    s.sort_by(f64::total_cmp);
    s[((s.len() - 1) as f64 * q).round() as usize]
}

fn qerrs(est: &dyn CardEstimator, test: &[LabeledQuery]) -> Vec<f64> {
    let queries: Vec<Query> = test.iter().map(|lq| lq.query.clone()).collect();
    est.estimate_cards(&queries)
        .iter()
        .zip(test)
        .map(|(&e, lq)| q_error(lq.cardinality as f64, e))
        .collect()
}

/// One workload regime: table, holdout/test workloads, trained primary.
struct Regime {
    name: &'static str,
    table: Table,
    holdout: Vec<LabeledQuery>,
    test: Vec<LabeledQuery>,
    uae: Uae,
    sample_ratio: f64,
}

impl Regime {
    fn backends(&self) -> Vec<Arc<dyn CardEstimator>> {
        vec![
            Arc::new(HistogramEstimator::new(&self.table, 64)),
            Arc::new(SpnEstimator::new(&self.table, &SpnConfig::default())),
            Arc::new(SamplingEstimator::new(&self.table, self.sample_ratio, 0x5A17)),
        ]
    }

    fn router(&self) -> Router {
        Router::calibrate(
            &self.table,
            &self.uae.clone(),
            self.backends(),
            &self.holdout,
            RouteConfig::default(),
        )
    }

    fn singles(&self) -> Vec<(String, Box<dyn CardEstimator>)> {
        vec![
            ("UAE".into(), Box::new(self.uae.clone())),
            ("Histogram".into(), Box::new(HistogramEstimator::new(&self.table, 64))),
            ("DeepDB".into(), Box::new(SpnEstimator::new(&self.table, &SpnConfig::default()))),
            (
                "Sampling".into(),
                Box::new(SamplingEstimator::new(&self.table, self.sample_ratio, 0x5A17)),
            ),
        ]
    }
}

fn build_regime(
    name: &'static str,
    table: Table,
    workload: impl Fn(&Table, usize, u64, &HashSet<u64>) -> Vec<LabeledQuery>,
    seed: u64,
    epochs: usize,
    sample_ratio: f64,
) -> Regime {
    let train = workload(&table, TRAIN_QUERIES, seed, &HashSet::new());
    let excl = fingerprints(&train);
    let holdout = workload(&table, HOLDOUT_QUERIES, seed ^ 0x44, &excl);
    let test = workload(&table, TEST_QUERIES, seed ^ 0x55, &excl);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 48, blocks: 1, seed: 7 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 256,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&table, cfg);
    eprintln!("[route] [{name}] training hybrid UAE ({epochs} epochs)…");
    uae.train_hybrid(&train, epochs);
    Regime { name, table, holdout, test, uae, sample_ratio }
}

fn main() {
    let t0 = Instant::now();
    let metrics = metrics_out();
    if let Some(dir) = metrics.parent() {
        std::fs::create_dir_all(dir).ok();
    }

    // Regime A: strongly correlated table, with every query sitting on
    // the value-level dependencies (county ≈ f(state), date ≈ f(state,
    // class)) that the SPN's coarse row clustering and the histogram's
    // per-column factorization both model as independent — while a
    // generous row sample answers them near-exactly.
    let dmv = dmv_like(DMV_ROWS, 0xCE05);
    let regime_a = build_regime(
        "dmv/correlated",
        dmv,
        |t, n, s, excl| {
            let spec = CorrelatedSpec::dmv(t, n, s).expect("dmv dependency columns");
            generate_correlated_workload(t, &spec, excl)
        },
        0xA11A,
        12,
        DMV_SAMPLE_RATIO,
    );
    // Regime B: wide mutually-independent table, random narrow queries
    // (5–9 filters) — where the autoregressive tail degrades (paper
    // finding 6) and tiny selectivities starve the row sample.
    let kdd = kddcup_like(KDD_ROWS, KDD_COLS, 0x5EED);
    let regime_b = build_regime(
        "kddcup/random",
        kdd,
        |t, n, s, excl| {
            generate_workload(
                t,
                &WorkloadSpec { seed: s, num_queries: n, bounded: None, nf_range: (5, 9) },
                excl,
            )
        },
        0xB22B,
        2,
        KDD_SAMPLE_RATIO,
    );
    let regimes = [regime_a, regime_b];

    // ---- determinism: same seeds ⇒ same policy, decisions, estimates --
    for r in &regimes {
        let ra = r.router();
        let rb = r.router();
        assert_eq!(ra.policy(), rb.policy(), "[{}] calibration must be deterministic", r.name);
        let queries: Vec<Query> = r.test.iter().map(|lq| lq.query.clone()).collect();
        assert_eq!(
            ra.decide_batch(&queries),
            rb.decide_batch(&queries),
            "[{}] decisions must replay identically",
            r.name
        );
        let fa = RoutedFleet::new(Arc::new(r.uae.clone()), Arc::new(ra));
        let fb = RoutedFleet::new(Arc::new(r.uae.clone()), Arc::new(rb));
        assert_eq!(
            fa.try_estimate_cards(&queries),
            fb.try_estimate_cards(&queries),
            "[{}] fleet estimates must replay bit-identically",
            r.name
        );
    }
    println!("[route] determinism: policies, decisions and fleet estimates replay identically");

    // ---- accuracy: fleet vs every single candidate --------------------
    let mut singles_errs: Vec<(String, Vec<Vec<f64>>)> = Vec::new();
    let mut fleet_errs: Vec<Vec<f64>> = Vec::new();
    let mut ok = true;

    for r in &regimes {
        let fleet = RoutedFleet::new(Arc::new(r.uae.clone()), Arc::new(r.router()));
        match JsonlObserver::append(&metrics, r.name) {
            Ok(obs) => fleet.set_serve_observer(Box::new(obs)),
            Err(e) => eprintln!("warning: cannot open {}: {e}", metrics.display()),
        }

        let mut best_median = f64::INFINITY;
        for (name, est) in &r.singles() {
            let errs = qerrs(est.as_ref(), &r.test);
            let med = quantile(&errs, 0.5);
            best_median = best_median.min(med);
            eprintln!(
                "[route] [{}] {name:<10} median {med:.2}  p95 {:.1}",
                r.name,
                quantile(&errs, 0.95)
            );
            match singles_errs.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => v.push(errs),
                None => singles_errs.push((name.clone(), vec![errs])),
            }
        }
        let errs = qerrs(&fleet, &r.test);
        let fleet_med = quantile(&errs, 0.5);
        let stats = fleet.serve_stats();
        eprintln!(
            "[route] [{}] {:<10} median {fleet_med:.2}  p95 {:.1}  ({} routed / {} served)",
            r.name,
            "Fleet",
            quantile(&errs, 0.95),
            stats.routed,
            stats.served,
        );
        drop(fleet.take_serve_observer()); // flush JSONL

        let pass = fleet_med <= best_median * REGIME_GRACE;
        println!(
            "[route] [{}] fleet median {fleet_med:.2} vs best single {best_median:.2} — {}",
            r.name,
            if pass { "no worse (ok)" } else { "WORSE (fail)" }
        );
        if !pass {
            ok = false;
        }
        fleet_errs.push(errs);
    }

    // ---- blended strict dominance -------------------------------------
    let fb: Vec<f64> = fleet_errs.iter().flatten().copied().collect();
    let (fm, fp) = (quantile(&fb, 0.5), quantile(&fb, 0.95));
    for (name, per_regime) in &singles_errs {
        let blended: Vec<f64> = per_regime.iter().flatten().copied().collect();
        let (m, p) = (quantile(&blended, 0.5), quantile(&blended, 0.95));
        let pass = fm < m && fp < p;
        println!(
            "[route] blended vs {name:<10}: fleet {fm:.2}/{fp:.1} vs {m:.2}/{p:.1} — {}",
            if pass { "strictly better (ok)" } else { "NOT strictly better (fail)" }
        );
        if !pass {
            ok = false;
        }
    }

    println!("[route] telemetry: {} ({:.0}s total)", metrics.display(), t0.elapsed().as_secs_f64());
    if !ok {
        eprintln!("[route] FAILED: the fleet did not meet the routing acceptance inequalities");
        std::process::exit(1);
    }
    println!("[route] PASS: fleet dominates on both regimes and blended");
}
