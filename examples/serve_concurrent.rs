//! Concurrent-serving smoke drill: stand up the micro-batching front-end
//! over two tenants, fire an unpaced burst at a deliberately small queue,
//! and show every moving part working — size/deadline flushes, typed
//! `Overloaded` load shedding, the SLO degradation ladder, a mid-run
//! model hot-swap, and a clean drain where every accepted request is
//! answered. Front-end telemetry (one JSONL line per batch flush and
//! served request) goes to `--metrics-out` (default
//! `target/serving.jsonl`).
//!
//! ```sh
//! cargo run --release --example serve_concurrent -- \
//!     --metrics-out target/serving.jsonl
//! ```
//!
//! CI runs this under both the default and `UAE_FORCE_SCALAR=1` kernels
//! and uploads the telemetry as an artifact. The drill exits nonzero if
//! any counter fails to reconcile.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use uae::core::{JsonlObserver, Uae, UaeConfig};
use uae::query::{generate_workload, Query, WorkloadSpec};
use uae::server::{DegradeConfig, Registry, Server, ServerConfig, SubmitError};

fn metrics_out() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            if let Some(p) = args.next() {
                return PathBuf::from(p);
            }
        } else if let Some(p) = a.strip_prefix("--metrics-out=") {
            return PathBuf::from(p);
        }
    }
    PathBuf::from("target/serving.jsonl")
}

fn train_tenant(rows: usize, seed: u64) -> Uae {
    let table = uae::data::census_like(rows, seed);
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 64;
    cfg.estimate_samples = 400;
    let mut uae = Uae::new(&table, cfg);
    uae.train_data(1);
    uae
}

fn main() {
    let metrics = metrics_out();
    if let Some(dir) = metrics.parent() {
        std::fs::create_dir_all(dir).ok();
    }

    println!("[smoke] training two tenants…");
    let registry = Arc::new(Registry::new());
    registry.register("alpha", train_tenant(3_000, 11));
    registry.register("beta", train_tenant(2_000, 13));

    let queries: Vec<Query> = generate_workload(
        &uae::data::census_like(3_000, 11),
        &WorkloadSpec::random(128, 0xB00C),
        &std::collections::HashSet::new(),
    )
    .into_iter()
    .map(|lq| lq.query)
    .collect();

    // Small queue + low degradation threshold so an unpaced burst on one
    // core visibly sheds load and shrinks budgets.
    let server = Server::start(
        registry.clone(),
        ServerConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 96,
            executors: 1,
            degrade: DegradeConfig { queue_depth_threshold: 16, ..DegradeConfig::default() },
            latency_window: 1024,
            ..ServerConfig::default()
        },
    );
    match JsonlObserver::create(&metrics, "serve-front") {
        Ok(obs) => server.set_observer(Box::new(obs)),
        Err(e) => eprintln!("warning: cannot open {}: {e}", metrics.display()),
    }

    // Phase 1: unpaced burst across both tenants.
    println!("[smoke] burst: 400 submissions across 2 tenants, queue capacity 96…");
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..400usize {
        let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
        match server.submit(tenant, queries[i % queries.len()].clone()) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    // Unknown tenants bounce without consuming queue space.
    assert!(matches!(
        server.submit("gamma", queries[0].clone()),
        Err(SubmitError::UnknownTenant(_))
    ));

    // Phase 2: hot-swap beta's model while alpha keeps serving.
    println!("[smoke] hot-swapping tenant `beta`…");
    registry.swap_model("beta", train_tenant(2_000, 17)).expect("beta is registered");
    for q in queries.iter().take(32) {
        if let Ok(t) = server.submit("beta", q.clone()) {
            tickets.push(t);
        }
    }

    let stats = server.shutdown();
    let mut answered = 0u64;
    for t in tickets {
        t.wait().expect("structurally valid queries estimate cleanly");
        answered += 1;
    }

    println!(
        "[smoke] accepted {} | rejected(overloaded) {} | completed {} | degraded {} \
         | batches {} (size {} / deadline {} / drain {}) | mean batch {:.1} \
         | max depth {} | p50 {:.1} ms | p99 {:.1} ms",
        stats.accepted,
        stats.rejected_overloaded,
        stats.completed,
        stats.degraded_requests,
        stats.batches,
        stats.flush_size,
        stats.flush_deadline,
        stats.flush_drain,
        stats.mean_batch_size(),
        stats.max_queue_depth,
        stats.p50_ms,
        stats.p99_ms,
    );

    // Every submission is accounted for, every accepted request answered.
    assert_eq!(stats.rejected_overloaded, rejected);
    assert_eq!(
        stats.submitted,
        stats.accepted + stats.rejected_overloaded + stats.rejected_unknown_tenant
    );
    assert_eq!(stats.completed + stats.query_errors + stats.failed, stats.accepted);
    assert_eq!(stats.completed, answered);
    assert_eq!(stats.queue_depth, 0, "nothing left in flight after shutdown");
    assert_eq!(stats.failed, 0, "no executor panics in a clean run");
    assert!(stats.batches > 0 && stats.rejected_unknown_tenant == 1);
    assert!(
        stats.degraded_requests > 0,
        "a 400-request burst over a 16-deep threshold must engage the ladder"
    );

    println!("[smoke] serving telemetry: {}", metrics.display());
    println!("[smoke] drill complete.");
}
