//! Serving-layer fault drill: inject every deterministic fault the
//! `FaultPlan` knows — transient NaN logits, persistent NaN logits, a
//! panicking query, a corrupted checkpoint byte — and show the hardened
//! cascade absorbing each one: validation shortcuts, derived-seed retries,
//! histogram fallback, panic isolation, and a typed checksum rejection.
//! Serve telemetry (one JSONL line per recovery event) goes to
//! `--metrics-out` (default `target/serve_faults.jsonl`).
//!
//! ```sh
//! cargo run --release --example serve_fault_drill -- \
//!     --metrics-out target/serve_faults.jsonl
//! ```
//!
//! CI runs this as the end-to-end guard on the degraded-serving path and
//! uploads the telemetry file as a build artifact. Every estimate printed
//! below is asserted finite and inside `[0, N]` — the drill exits nonzero
//! if any fault escapes the cascade.

use std::path::PathBuf;

use uae::core::{EstimateSource, JsonlObserver, LoadError, Uae, UaeConfig};
use uae::data::{census_like, Table};
use uae::query::{Predicate, Query};

fn metrics_out() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            if let Some(p) = args.next() {
                return PathBuf::from(p);
            }
        } else if let Some(p) = a.strip_prefix("--metrics-out=") {
            return PathBuf::from(p);
        }
    }
    PathBuf::from("target/serve_faults.jsonl")
}

fn drill_workload(table: &Table) -> Vec<(&'static str, Query)> {
    let bounded = uae::query::default_bounded_column(table);
    vec![
        ("healthy range", Query::new(vec![Predicate::ge(bounded, 3i64)])),
        ("transient NaN (retried)", Query::new(vec![Predicate::le(bounded, 9i64)])),
        ("persistent NaN (baseline)", Query::new(vec![Predicate::ge(bounded, 5i64)])),
        ("full wildcard (validated)", Query::new(vec![])),
        ("panicking worker (isolated)", Query::new(vec![Predicate::le(bounded, 6i64)])),
        ("inverted range (validated)", {
            Query::new(vec![Predicate::ge(bounded, 8i64), Predicate::le(bounded, 2i64)])
        }),
        ("healthy point", Query::new(vec![Predicate::eq(bounded, 4i64)])),
    ]
}

fn main() {
    let metrics = metrics_out();
    if let Some(dir) = metrics.parent() {
        std::fs::create_dir_all(dir).ok();
    }

    let table = census_like(2_000, 21);
    let n = table.num_rows() as f64;
    let mut uae = Uae::new(&table, UaeConfig::default());
    println!("[drill] training 1 epoch on {} rows…", table.num_rows());
    uae.train_data(1);

    // The fault plan targets serving indices: query 1 gets one NaN attempt,
    // query 2 NaNs on every attempt, query 4 panics mid-batch, and every
    // checkpoint write flips one byte.
    {
        let serve = uae.serve_config_mut();
        serve.fault.nan_once = vec![1];
        serve.fault.nan_always = vec![2];
        serve.fault.panic_queries = vec![4];
        serve.fault.corrupt_checkpoint = Some((96, 0x40));
    }
    match JsonlObserver::create(&metrics, "fault-drill") {
        Ok(obs) => uae.set_serve_observer(Box::new(obs)),
        Err(e) => eprintln!("warning: cannot open {}: {e}", metrics.display()),
    }

    let labeled = drill_workload(&table);
    let queries: Vec<Query> = labeled.iter().map(|(_, q)| q.clone()).collect();
    println!("[drill] serving {} queries through the faulted batch path…", queries.len());
    // The injected panic is caught and isolated by the estimator; silence
    // the default hook while serving so its backtrace doesn't drown the
    // drill output (the hook is restored immediately after).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = uae.try_estimate_cards(&queries);
    std::panic::set_hook(hook);

    println!("\n{:<30} {:>12} {:>12} {:>8} {:>8}", "query", "card", "source", "retried", "clamped");
    for ((label, _), res) in labeled.iter().zip(&results) {
        let est = res.as_ref().expect("drill queries are structurally valid");
        assert!(
            est.card.is_finite() && (0.0..=n).contains(&est.card),
            "{label}: card {} escaped [0, {n}]",
            est.card
        );
        println!(
            "{:<30} {:>12.1} {:>12} {:>8} {:>8}",
            label,
            est.card,
            format!("{:?}", est.source),
            est.retried,
            est.clamped
        );
    }
    assert_eq!(results[2].as_ref().expect("valid").source, EstimateSource::Baseline);
    assert_eq!(results[4].as_ref().expect("valid").source, EstimateSource::Baseline);

    let stats = uae.serve_stats();
    println!("\n[drill] serve counters: {stats:?}");
    assert!(stats.retries >= 1, "the transient NaN must have been retried");
    assert!(stats.fallbacks >= 2, "both persistent faults must reach the baseline");
    assert!(stats.panics_isolated >= 1, "the panic must be isolated, not fatal");

    // Checkpoint corruption: the injected byte flip is caught by the
    // trailing checksum, and the estimator that tried to load stays whole.
    println!("\n[drill] writing a corrupted checkpoint and trying to restore it…");
    let corrupted = uae.save_checkpoint();
    let mut restored = Uae::new(&table, UaeConfig::default());
    match restored.load_checkpoint(&corrupted) {
        Err(LoadError::ChecksumMismatch) => {
            println!("[drill] rejected as expected: {}", LoadError::ChecksumMismatch)
        }
        other => panic!("corrupted checkpoint must fail the checksum, got {other:?}"),
    }
    uae.serve_config_mut().fault.corrupt_checkpoint = None;
    restored.load_checkpoint(&uae.save_checkpoint()).expect("clean checkpoint restores");
    println!("[drill] clean checkpoint restores fine; drill complete.");
    println!("[drill] serve telemetry: {}", metrics.display());
}
