//! Checkpoint/resume smoke test: train, checkpoint mid-run, restore into a
//! fresh estimator, finish training, and verify the resumed run reproduces
//! the uninterrupted one bit for bit. Also exercises `--metrics-out`: pass
//! a path to collect per-epoch JSONL telemetry from both runs.
//!
//! ```sh
//! cargo run --release --example train_checkpoint_resume -- \
//!     --metrics-out target/train_metrics.jsonl
//! ```
//!
//! CI runs this as the end-to-end guard on the `UAEC` checkpoint format
//! and uploads the metrics file as a build artifact.

use std::collections::HashSet;
use std::path::PathBuf;

use uae::core::{JsonlObserver, Uae, UaeConfig};
use uae::query::{default_bounded_column, generate_workload, WorkloadSpec};

fn metrics_out() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--metrics-out=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

fn attach(uae: &mut Uae, path: Option<&PathBuf>, label: &str) {
    if let Some(p) = path {
        match JsonlObserver::append(p, label) {
            Ok(obs) => uae.set_observer(Box::new(obs)),
            Err(e) => eprintln!("warning: cannot open {}: {e}", p.display()),
        }
    }
}

fn main() {
    let metrics = metrics_out();
    const EPOCHS: usize = 6;
    const SPLIT: usize = 3;

    let table = uae::data::census_like(5_000, 42);
    let bounded = default_bounded_column(&table);
    let train =
        generate_workload(&table, &WorkloadSpec::in_workload(bounded, 200, 1), &HashSet::new());

    // Reference: one uninterrupted hybrid run.
    let mut reference = Uae::new(&table, UaeConfig::default());
    attach(&mut reference, metrics.as_ref(), "reference");
    println!("[reference] training {EPOCHS} epochs uninterrupted…");
    let ref_losses = reference.train_hybrid(&train, EPOCHS);

    // Interrupted: train to the split point, write a checkpoint file…
    let ckpt = std::env::temp_dir().join(format!("uae_example_{}.uaec", std::process::id()));
    let mut first = Uae::new(&table, UaeConfig::default());
    attach(&mut first, metrics.as_ref(), "resume");
    println!("[resume]    training {SPLIT} epochs, then checkpointing…");
    let mut losses = first.train_hybrid(&train, SPLIT);
    first.write_checkpoint_file(&ckpt).expect("write checkpoint");
    println!(
        "[resume]    wrote {} ({} bytes, {} steps so far)",
        ckpt.display(),
        std::fs::metadata(&ckpt).expect("checkpoint exists").len(),
        first.train_stats().steps
    );
    drop(first); // the "crash"

    // …and restore into a brand-new process-equivalent estimator.
    let mut resumed = Uae::new(&table, UaeConfig::default());
    resumed.load_checkpoint_file(&ckpt).expect("read checkpoint");
    attach(&mut resumed, metrics.as_ref(), "resume");
    println!("[resume]    restored at epoch {}, finishing…", resumed.train_stats().epochs);
    losses.extend(resumed.train_hybrid(&train, EPOCHS - SPLIT));
    std::fs::remove_file(&ckpt).ok();

    // The two trajectories must agree exactly: same per-epoch losses, same
    // final weights. Anything less means optimizer or RNG state leaked.
    assert_eq!(ref_losses.len(), losses.len());
    for (e, (a, b)) in ref_losses.iter().zip(&losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {e} loss diverged: {a} vs {b}");
    }
    assert_eq!(
        reference.save_weights(),
        resumed.save_weights(),
        "final weights diverged after resume"
    );
    println!("\nOK: resumed run is bit-exact with the uninterrupted run");
    println!("per-epoch loss: {losses:.3?}");
    if let Some(p) = &metrics {
        println!("per-epoch metrics appended to {}", p.display());
    }
}
