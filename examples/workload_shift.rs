//! Incremental query-workload ingestion (paper §4.5 / §5.4): a data-trained
//! model goes stale when the workload shifts to a new data region; UAE
//! ingests the new queries with a few supervised epochs instead of
//! retraining.
//!
//! ```sh
//! cargo run --release --example workload_shift
//! ```

use std::collections::HashSet;

use uae::core::{Uae, UaeConfig};
use uae::query::workload::incremental_windows;
use uae::query::{default_bounded_column, evaluate, generate_workload, BoundedSpec, WorkloadSpec};

fn main() {
    let table = uae::data::dmv_like(10_000, 7);
    let col = default_bounded_column(&table);
    println!(
        "bounded column: {} ({} distinct values)",
        table.column(col).name(),
        table.column(col).domain_size()
    );

    // Pretrain on data only (this is exactly Naru).
    let mut stale = Uae::new(&table, UaeConfig::default()).with_name("stale Naru");
    stale.train_data(4);
    let mut refined = Uae::new(&table, UaeConfig::default()).with_name("refined UAE");
    refined.train_data(4);

    // Three workload phases focusing on different regions of the domain.
    println!("\n{:<12} {:>16} {:>16}", "phase", "stale mean-q", "refined mean-q");
    for (i, win) in incremental_windows(3).into_iter().enumerate() {
        let spec = |n, seed| WorkloadSpec {
            seed,
            num_queries: n,
            bounded: Some(BoundedSpec { column: col, center_window: win, volume_frac: 0.01 }),
            nf_range: (2, 4),
        };
        let train = generate_workload(&table, &spec(120, 50 + i as u64), &HashSet::new());
        let test =
            generate_workload(&table, &spec(40, 80 + i as u64), &uae::query::fingerprints(&train));

        // The refined model ingests the phase's queries (§4.5: 10–20
        // supervised epochs, no retraining, no catastrophic forgetting).
        refined.ingest_workload(&train, 8);

        let es = evaluate(&stale, &test);
        let er = evaluate(&refined, &test);
        println!(
            "{:<12} {:>16.3} {:>16.3}",
            format!("window {:.1}-{:.1}", win.0, win.1),
            es.errors.mean,
            er.errors.mean
        );
    }
}
