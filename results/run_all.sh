#!/bin/bash
# Sequential full-suite run; per-experiment logs in results/.
cd /root/repo
for exp in table4 table5 table6 figure3 figure5 figure6 ablations; do
  echo "=== $exp start $(date +%T) ===" >> results/suite.log
  UAE_SCALE=1 ./target/release/$exp > results/$exp.txt 2> results/$exp.log
  echo "$exp exit $?" >> results/status.txt
done
echo "SUITE DONE" >> results/status.txt
