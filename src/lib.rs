//! # UAE — Unified deep autoregressive cardinality estimation
//!
//! Umbrella crate re-exporting the full public API of the UAE reproduction
//! (Wu & Cong, SIGMOD 2021). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduced tables and figures.
//!
//! The typical entry points are:
//!
//! * [`data`] — build or generate a [`data::Table`];
//! * [`query`] — generate workloads and compute ground-truth cardinalities;
//! * [`core`] — train a [`core::Uae`] estimator from data, queries, or both;
//! * [`estimators`] — the nine baseline estimators from the paper;
//! * [`join`] — multi-table join estimation and the optimizer study;
//! * [`server`] — the concurrent serving front-end (micro-batching,
//!   per-tenant registry, backpressure, SLO degradation).

pub use uae_core as core;
pub use uae_data as data;
pub use uae_estimators as estimators;
pub use uae_join as join;
pub use uae_query as query;
pub use uae_server as server;
pub use uae_tensor as tensor;
