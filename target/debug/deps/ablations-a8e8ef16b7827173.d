/root/repo/target/debug/deps/ablations-a8e8ef16b7827173.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a8e8ef16b7827173: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
