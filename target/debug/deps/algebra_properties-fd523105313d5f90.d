/root/repo/target/debug/deps/algebra_properties-fd523105313d5f90.d: crates/tensor/tests/algebra_properties.rs

/root/repo/target/debug/deps/algebra_properties-fd523105313d5f90: crates/tensor/tests/algebra_properties.rs

crates/tensor/tests/algebra_properties.rs:
