/root/repo/target/debug/deps/batch_equivalence-27d06f191a81a32a.d: crates/core/tests/batch_equivalence.rs

/root/repo/target/debug/deps/batch_equivalence-27d06f191a81a32a: crates/core/tests/batch_equivalence.rs

crates/core/tests/batch_equivalence.rs:
