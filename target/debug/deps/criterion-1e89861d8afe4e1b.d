/root/repo/target/debug/deps/criterion-1e89861d8afe4e1b.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-1e89861d8afe4e1b: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
