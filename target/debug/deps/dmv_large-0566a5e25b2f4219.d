/root/repo/target/debug/deps/dmv_large-0566a5e25b2f4219.d: crates/bench/src/bin/dmv_large.rs

/root/repo/target/debug/deps/dmv_large-0566a5e25b2f4219: crates/bench/src/bin/dmv_large.rs

crates/bench/src/bin/dmv_large.rs:
