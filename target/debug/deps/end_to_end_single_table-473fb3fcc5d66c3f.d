/root/repo/target/debug/deps/end_to_end_single_table-473fb3fcc5d66c3f.d: tests/end_to_end_single_table.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_single_table-473fb3fcc5d66c3f.rmeta: tests/end_to_end_single_table.rs Cargo.toml

tests/end_to_end_single_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
