/root/repo/target/debug/deps/end_to_end_single_table-6344a63b1ffc0ab1.d: tests/end_to_end_single_table.rs

/root/repo/target/debug/deps/end_to_end_single_table-6344a63b1ffc0ab1: tests/end_to_end_single_table.rs

tests/end_to_end_single_table.rs:
