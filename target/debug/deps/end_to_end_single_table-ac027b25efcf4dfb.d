/root/repo/target/debug/deps/end_to_end_single_table-ac027b25efcf4dfb.d: tests/end_to_end_single_table.rs

/root/repo/target/debug/deps/end_to_end_single_table-ac027b25efcf4dfb: tests/end_to_end_single_table.rs

tests/end_to_end_single_table.rs:
