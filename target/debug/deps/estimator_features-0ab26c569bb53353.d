/root/repo/target/debug/deps/estimator_features-0ab26c569bb53353.d: crates/core/tests/estimator_features.rs

/root/repo/target/debug/deps/estimator_features-0ab26c569bb53353: crates/core/tests/estimator_features.rs

crates/core/tests/estimator_features.rs:
