/root/repo/target/debug/deps/figure3-de816c865076cae7.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-de816c865076cae7: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
