/root/repo/target/debug/deps/figure4-8599507ca72c10c2.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-8599507ca72c10c2: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
