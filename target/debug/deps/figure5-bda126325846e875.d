/root/repo/target/debug/deps/figure5-bda126325846e875.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-bda126325846e875: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
