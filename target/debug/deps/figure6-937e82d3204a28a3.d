/root/repo/target/debug/deps/figure6-937e82d3204a28a3.d: crates/bench/src/bin/figure6.rs

/root/repo/target/debug/deps/figure6-937e82d3204a28a3: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
