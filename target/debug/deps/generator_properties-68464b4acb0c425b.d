/root/repo/target/debug/deps/generator_properties-68464b4acb0c425b.d: crates/data/tests/generator_properties.rs

/root/repo/target/debug/deps/generator_properties-68464b4acb0c425b: crates/data/tests/generator_properties.rs

crates/data/tests/generator_properties.rs:
