/root/repo/target/debug/deps/incremental_data-386bb0852585c21c.d: crates/bench/src/bin/incremental_data.rs

/root/repo/target/debug/deps/incremental_data-386bb0852585c21c: crates/bench/src/bin/incremental_data.rs

crates/bench/src/bin/incremental_data.rs:
