/root/repo/target/debug/deps/incremental_learning-368b7d8aee946d19.d: tests/incremental_learning.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_learning-368b7d8aee946d19.rmeta: tests/incremental_learning.rs Cargo.toml

tests/incremental_learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
