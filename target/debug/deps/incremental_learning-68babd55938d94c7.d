/root/repo/target/debug/deps/incremental_learning-68babd55938d94c7.d: tests/incremental_learning.rs

/root/repo/target/debug/deps/incremental_learning-68babd55938d94c7: tests/incremental_learning.rs

tests/incremental_learning.rs:
