/root/repo/target/debug/deps/incremental_learning-bdb41f7194fef1f4.d: tests/incremental_learning.rs

/root/repo/target/debug/deps/incremental_learning-bdb41f7194fef1f4: tests/incremental_learning.rs

tests/incremental_learning.rs:
