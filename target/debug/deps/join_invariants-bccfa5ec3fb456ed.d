/root/repo/target/debug/deps/join_invariants-bccfa5ec3fb456ed.d: crates/join/tests/join_invariants.rs

/root/repo/target/debug/deps/join_invariants-bccfa5ec3fb456ed: crates/join/tests/join_invariants.rs

crates/join/tests/join_invariants.rs:
