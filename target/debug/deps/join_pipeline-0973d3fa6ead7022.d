/root/repo/target/debug/deps/join_pipeline-0973d3fa6ead7022.d: tests/join_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libjoin_pipeline-0973d3fa6ead7022.rmeta: tests/join_pipeline.rs Cargo.toml

tests/join_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
