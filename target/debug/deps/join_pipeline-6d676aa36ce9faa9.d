/root/repo/target/debug/deps/join_pipeline-6d676aa36ce9faa9.d: tests/join_pipeline.rs

/root/repo/target/debug/deps/join_pipeline-6d676aa36ce9faa9: tests/join_pipeline.rs

tests/join_pipeline.rs:
