/root/repo/target/debug/deps/join_pipeline-c0369801b3d5032f.d: tests/join_pipeline.rs

/root/repo/target/debug/deps/join_pipeline-c0369801b3d5032f: tests/join_pipeline.rs

tests/join_pipeline.rs:
