/root/repo/target/debug/deps/model_quality-0a8bf43f65e0feb7.d: tests/model_quality.rs

/root/repo/target/debug/deps/model_quality-0a8bf43f65e0feb7: tests/model_quality.rs

tests/model_quality.rs:
