/root/repo/target/debug/deps/model_quality-57a2110f50fad4fc.d: tests/model_quality.rs

/root/repo/target/debug/deps/model_quality-57a2110f50fad4fc: tests/model_quality.rs

tests/model_quality.rs:
