/root/repo/target/debug/deps/model_quality-b2fecfba44f72a47.d: tests/model_quality.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_quality-b2fecfba44f72a47.rmeta: tests/model_quality.rs Cargo.toml

tests/model_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
