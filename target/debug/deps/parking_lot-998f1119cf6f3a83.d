/root/repo/target/debug/deps/parking_lot-998f1119cf6f3a83.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-998f1119cf6f3a83.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
