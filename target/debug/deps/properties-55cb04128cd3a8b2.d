/root/repo/target/debug/deps/properties-55cb04128cd3a8b2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-55cb04128cd3a8b2: tests/properties.rs

tests/properties.rs:
