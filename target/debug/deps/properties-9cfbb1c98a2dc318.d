/root/repo/target/debug/deps/properties-9cfbb1c98a2dc318.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9cfbb1c98a2dc318: tests/properties.rs

tests/properties.rs:
