/root/repo/target/debug/deps/properties-e94ccc110f132c34.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e94ccc110f132c34.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
