/root/repo/target/debug/deps/proptest-1163b9df4a1ffafb.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-1163b9df4a1ffafb.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-1163b9df4a1ffafb.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
