/root/repo/target/debug/deps/proptest-56e32fe848d92d6b.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-56e32fe848d92d6b.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
