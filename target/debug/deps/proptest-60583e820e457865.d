/root/repo/target/debug/deps/proptest-60583e820e457865.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-60583e820e457865: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
