/root/repo/target/debug/deps/rand-805198e6d7839032.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-805198e6d7839032.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
