/root/repo/target/debug/deps/regimes-7e80de12d2c154c8.d: crates/estimators/tests/regimes.rs

/root/repo/target/debug/deps/regimes-7e80de12d2c154c8: crates/estimators/tests/regimes.rs

crates/estimators/tests/regimes.rs:
