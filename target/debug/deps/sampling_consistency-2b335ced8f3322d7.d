/root/repo/target/debug/deps/sampling_consistency-2b335ced8f3322d7.d: crates/core/tests/sampling_consistency.rs

/root/repo/target/debug/deps/sampling_consistency-2b335ced8f3322d7: crates/core/tests/sampling_consistency.rs

crates/core/tests/sampling_consistency.rs:
