/root/repo/target/debug/deps/table2-64daec3c591fa9f6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-64daec3c591fa9f6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
