/root/repo/target/debug/deps/table3-ba8a7c5d31386643.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ba8a7c5d31386643: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
