/root/repo/target/debug/deps/table4-d20c2bbf6dbe3345.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-d20c2bbf6dbe3345: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
