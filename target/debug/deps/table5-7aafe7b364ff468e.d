/root/repo/target/debug/deps/table5-7aafe7b364ff468e.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-7aafe7b364ff468e: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
