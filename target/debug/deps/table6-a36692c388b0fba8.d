/root/repo/target/debug/deps/table6-a36692c388b0fba8.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-a36692c388b0fba8: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
