/root/repo/target/debug/deps/uae-11d5b052a9d4d4aa.d: src/lib.rs

/root/repo/target/debug/deps/libuae-11d5b052a9d4d4aa.rlib: src/lib.rs

/root/repo/target/debug/deps/libuae-11d5b052a9d4d4aa.rmeta: src/lib.rs

src/lib.rs:
