/root/repo/target/debug/deps/uae-6018c5f91e0e8e80.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuae-6018c5f91e0e8e80.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
