/root/repo/target/debug/deps/uae-605d9e883667e449.d: src/lib.rs

/root/repo/target/debug/deps/libuae-605d9e883667e449.rlib: src/lib.rs

/root/repo/target/debug/deps/libuae-605d9e883667e449.rmeta: src/lib.rs

src/lib.rs:
