/root/repo/target/debug/deps/uae-94b82d5ecdda5975.d: src/lib.rs

/root/repo/target/debug/deps/uae-94b82d5ecdda5975: src/lib.rs

src/lib.rs:
