/root/repo/target/debug/deps/uae-9a838d6b9bb300dd.d: src/lib.rs

/root/repo/target/debug/deps/uae-9a838d6b9bb300dd: src/lib.rs

src/lib.rs:
