/root/repo/target/debug/deps/uae-ff8314643e555cca.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuae-ff8314643e555cca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
