/root/repo/target/debug/deps/uae_bench-bb315cd1a3d48b95.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libuae_bench-bb315cd1a3d48b95.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libuae_bench-bb315cd1a3d48b95.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
