/root/repo/target/debug/deps/uae_bench-f8a23d762524e9ac.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/uae_bench-f8a23d762524e9ac: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
