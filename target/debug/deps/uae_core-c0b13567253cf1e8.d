/root/repo/target/debug/deps/uae_core-c0b13567253cf1e8.d: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

/root/repo/target/debug/deps/libuae_core-c0b13567253cf1e8.rlib: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

/root/repo/target/debug/deps/libuae_core-c0b13567253cf1e8.rmeta: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

crates/core/src/lib.rs:
crates/core/src/dps.rs:
crates/core/src/encoding.rs:
crates/core/src/estimator.rs:
crates/core/src/infer.rs:
crates/core/src/infer_batch.rs:
crates/core/src/model.rs:
crates/core/src/ordering.rs:
crates/core/src/serialize.rs:
crates/core/src/sf.rs:
crates/core/src/train.rs:
crates/core/src/vquery.rs:
