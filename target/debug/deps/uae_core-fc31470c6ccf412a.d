/root/repo/target/debug/deps/uae_core-fc31470c6ccf412a.d: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs Cargo.toml

/root/repo/target/debug/deps/libuae_core-fc31470c6ccf412a.rmeta: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/dps.rs:
crates/core/src/encoding.rs:
crates/core/src/estimator.rs:
crates/core/src/infer.rs:
crates/core/src/infer_batch.rs:
crates/core/src/model.rs:
crates/core/src/ordering.rs:
crates/core/src/serialize.rs:
crates/core/src/sf.rs:
crates/core/src/train.rs:
crates/core/src/vquery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
