/root/repo/target/debug/deps/uae_data-0dbdf51bd909ad59.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/debug/deps/libuae_data-0dbdf51bd909ad59.rlib: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/debug/deps/libuae_data-0dbdf51bd909ad59.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/par.rs:
crates/data/src/stats.rs:
crates/data/src/synth.rs:
crates/data/src/table.rs:
crates/data/src/value.rs:
