/root/repo/target/debug/deps/uae_data-30a89ffd3e474147.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/debug/deps/uae_data-30a89ffd3e474147: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/par.rs:
crates/data/src/stats.rs:
crates/data/src/synth.rs:
crates/data/src/table.rs:
crates/data/src/value.rs:
