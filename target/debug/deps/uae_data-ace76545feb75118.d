/root/repo/target/debug/deps/uae_data-ace76545feb75118.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libuae_data-ace76545feb75118.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/par.rs:
crates/data/src/stats.rs:
crates/data/src/synth.rs:
crates/data/src/table.rs:
crates/data/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
