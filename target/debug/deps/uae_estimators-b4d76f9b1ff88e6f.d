/root/repo/target/debug/deps/uae_estimators-b4d76f9b1ff88e6f.d: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs Cargo.toml

/root/repo/target/debug/deps/libuae_estimators-b4d76f9b1ff88e6f.rmeta: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs Cargo.toml

crates/estimators/src/lib.rs:
crates/estimators/src/bayesnet.rs:
crates/estimators/src/features.rs:
crates/estimators/src/histogram.rs:
crates/estimators/src/kde.rs:
crates/estimators/src/lr.rs:
crates/estimators/src/mhist.rs:
crates/estimators/src/mscn.rs:
crates/estimators/src/quicksel.rs:
crates/estimators/src/sampling.rs:
crates/estimators/src/spn.rs:
crates/estimators/src/stholes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
