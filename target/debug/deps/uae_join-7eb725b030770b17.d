/root/repo/target/debug/deps/uae_join-7eb725b030770b17.d: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

/root/repo/target/debug/deps/uae_join-7eb725b030770b17: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

crates/join/src/lib.rs:
crates/join/src/baselines.rs:
crates/join/src/estimator.rs:
crates/join/src/executor.rs:
crates/join/src/optimizer.rs:
crates/join/src/sampler.rs:
crates/join/src/schema.rs:
crates/join/src/synth.rs:
crates/join/src/workload.rs:
