/root/repo/target/debug/deps/uae_join-8826f97f3e8c6d24.d: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

/root/repo/target/debug/deps/libuae_join-8826f97f3e8c6d24.rlib: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

/root/repo/target/debug/deps/libuae_join-8826f97f3e8c6d24.rmeta: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

crates/join/src/lib.rs:
crates/join/src/baselines.rs:
crates/join/src/estimator.rs:
crates/join/src/executor.rs:
crates/join/src/optimizer.rs:
crates/join/src/sampler.rs:
crates/join/src/schema.rs:
crates/join/src/synth.rs:
crates/join/src/workload.rs:
