/root/repo/target/debug/deps/uae_join-dc6bd83e7a361d10.d: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libuae_join-dc6bd83e7a361d10.rmeta: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs Cargo.toml

crates/join/src/lib.rs:
crates/join/src/baselines.rs:
crates/join/src/estimator.rs:
crates/join/src/executor.rs:
crates/join/src/optimizer.rs:
crates/join/src/sampler.rs:
crates/join/src/schema.rs:
crates/join/src/synth.rs:
crates/join/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
