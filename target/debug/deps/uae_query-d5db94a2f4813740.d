/root/repo/target/debug/deps/uae_query-d5db94a2f4813740.d: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

/root/repo/target/debug/deps/libuae_query-d5db94a2f4813740.rlib: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

/root/repo/target/debug/deps/libuae_query-d5db94a2f4813740.rmeta: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

crates/query/src/lib.rs:
crates/query/src/estimator.rs:
crates/query/src/executor.rs:
crates/query/src/metrics.rs:
crates/query/src/parse.rs:
crates/query/src/predicate.rs:
crates/query/src/region.rs:
crates/query/src/report.rs:
crates/query/src/workload.rs:
