/root/repo/target/debug/deps/uae_query-dd1a30eae972e574.d: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libuae_query-dd1a30eae972e574.rmeta: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/estimator.rs:
crates/query/src/executor.rs:
crates/query/src/metrics.rs:
crates/query/src/parse.rs:
crates/query/src/predicate.rs:
crates/query/src/region.rs:
crates/query/src/report.rs:
crates/query/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
