/root/repo/target/debug/deps/uae_tensor-181c21ba7322b792.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/uae_tensor-181c21ba7322b792: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
