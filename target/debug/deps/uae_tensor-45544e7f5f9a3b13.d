/root/repo/target/debug/deps/uae_tensor-45544e7f5f9a3b13.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libuae_tensor-45544e7f5f9a3b13.rlib: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libuae_tensor-45544e7f5f9a3b13.rmeta: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
