/root/repo/target/debug/deps/uae_tensor-fc2389bbf15b32f7.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libuae_tensor-fc2389bbf15b32f7.rmeta: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
