/root/repo/target/debug/deps/workload_properties-3324d4a5ee1966b4.d: crates/query/tests/workload_properties.rs

/root/repo/target/debug/deps/workload_properties-3324d4a5ee1966b4: crates/query/tests/workload_properties.rs

crates/query/tests/workload_properties.rs:
