/root/repo/target/debug/examples/compare_estimators-1fb56004dbf7750f.d: examples/compare_estimators.rs

/root/repo/target/debug/examples/compare_estimators-1fb56004dbf7750f: examples/compare_estimators.rs

examples/compare_estimators.rs:
