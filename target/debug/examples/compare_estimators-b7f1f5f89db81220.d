/root/repo/target/debug/examples/compare_estimators-b7f1f5f89db81220.d: examples/compare_estimators.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_estimators-b7f1f5f89db81220.rmeta: examples/compare_estimators.rs Cargo.toml

examples/compare_estimators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
