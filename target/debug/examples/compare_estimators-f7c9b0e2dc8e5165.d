/root/repo/target/debug/examples/compare_estimators-f7c9b0e2dc8e5165.d: examples/compare_estimators.rs

/root/repo/target/debug/examples/compare_estimators-f7c9b0e2dc8e5165: examples/compare_estimators.rs

examples/compare_estimators.rs:
