/root/repo/target/debug/examples/custom_csv-0de7b340db1b3751.d: examples/custom_csv.rs

/root/repo/target/debug/examples/custom_csv-0de7b340db1b3751: examples/custom_csv.rs

examples/custom_csv.rs:
