/root/repo/target/debug/examples/custom_csv-7a67446a96b0aa9b.d: examples/custom_csv.rs

/root/repo/target/debug/examples/custom_csv-7a67446a96b0aa9b: examples/custom_csv.rs

examples/custom_csv.rs:
