/root/repo/target/debug/examples/custom_csv-c3e7173ebda7dc47.d: examples/custom_csv.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_csv-c3e7173ebda7dc47.rmeta: examples/custom_csv.rs Cargo.toml

examples/custom_csv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
