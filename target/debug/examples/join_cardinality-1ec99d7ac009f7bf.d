/root/repo/target/debug/examples/join_cardinality-1ec99d7ac009f7bf.d: examples/join_cardinality.rs Cargo.toml

/root/repo/target/debug/examples/libjoin_cardinality-1ec99d7ac009f7bf.rmeta: examples/join_cardinality.rs Cargo.toml

examples/join_cardinality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
