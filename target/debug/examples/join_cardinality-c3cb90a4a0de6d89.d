/root/repo/target/debug/examples/join_cardinality-c3cb90a4a0de6d89.d: examples/join_cardinality.rs

/root/repo/target/debug/examples/join_cardinality-c3cb90a4a0de6d89: examples/join_cardinality.rs

examples/join_cardinality.rs:
