/root/repo/target/debug/examples/join_cardinality-c46d32e04cef679a.d: examples/join_cardinality.rs

/root/repo/target/debug/examples/join_cardinality-c46d32e04cef679a: examples/join_cardinality.rs

examples/join_cardinality.rs:
