/root/repo/target/debug/examples/quickstart-5b920a71915e95df.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5b920a71915e95df.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
