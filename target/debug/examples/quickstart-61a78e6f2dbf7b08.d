/root/repo/target/debug/examples/quickstart-61a78e6f2dbf7b08.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-61a78e6f2dbf7b08: examples/quickstart.rs

examples/quickstart.rs:
