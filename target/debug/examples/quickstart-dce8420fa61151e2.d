/root/repo/target/debug/examples/quickstart-dce8420fa61151e2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dce8420fa61151e2: examples/quickstart.rs

examples/quickstart.rs:
