/root/repo/target/debug/examples/workload_shift-06afc50e6de08eba.d: examples/workload_shift.rs

/root/repo/target/debug/examples/workload_shift-06afc50e6de08eba: examples/workload_shift.rs

examples/workload_shift.rs:
