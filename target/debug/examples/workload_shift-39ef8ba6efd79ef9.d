/root/repo/target/debug/examples/workload_shift-39ef8ba6efd79ef9.d: examples/workload_shift.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_shift-39ef8ba6efd79ef9.rmeta: examples/workload_shift.rs Cargo.toml

examples/workload_shift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
