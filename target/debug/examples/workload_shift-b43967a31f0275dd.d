/root/repo/target/debug/examples/workload_shift-b43967a31f0275dd.d: examples/workload_shift.rs

/root/repo/target/debug/examples/workload_shift-b43967a31f0275dd: examples/workload_shift.rs

examples/workload_shift.rs:
