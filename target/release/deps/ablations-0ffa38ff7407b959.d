/root/repo/target/release/deps/ablations-0ffa38ff7407b959.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-0ffa38ff7407b959: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
