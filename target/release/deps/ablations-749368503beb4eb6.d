/root/repo/target/release/deps/ablations-749368503beb4eb6.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-749368503beb4eb6: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
