/root/repo/target/release/deps/ablations-79f5e75c4e33962c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-79f5e75c4e33962c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
