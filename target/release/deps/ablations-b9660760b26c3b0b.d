/root/repo/target/release/deps/ablations-b9660760b26c3b0b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-b9660760b26c3b0b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
