/root/repo/target/release/deps/algebra_properties-f7ce32567bbf3474.d: crates/tensor/tests/algebra_properties.rs

/root/repo/target/release/deps/algebra_properties-f7ce32567bbf3474: crates/tensor/tests/algebra_properties.rs

crates/tensor/tests/algebra_properties.rs:
