/root/repo/target/release/deps/batch_equivalence-01998e1a40462003.d: crates/core/tests/batch_equivalence.rs

/root/repo/target/release/deps/batch_equivalence-01998e1a40462003: crates/core/tests/batch_equivalence.rs

crates/core/tests/batch_equivalence.rs:
