/root/repo/target/release/deps/dmv_large-3175cd1238080eac.d: crates/bench/src/bin/dmv_large.rs

/root/repo/target/release/deps/dmv_large-3175cd1238080eac: crates/bench/src/bin/dmv_large.rs

crates/bench/src/bin/dmv_large.rs:
