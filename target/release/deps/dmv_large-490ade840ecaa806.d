/root/repo/target/release/deps/dmv_large-490ade840ecaa806.d: crates/bench/src/bin/dmv_large.rs

/root/repo/target/release/deps/dmv_large-490ade840ecaa806: crates/bench/src/bin/dmv_large.rs

crates/bench/src/bin/dmv_large.rs:
