/root/repo/target/release/deps/dmv_large-8dbeed437d46e4d8.d: crates/bench/src/bin/dmv_large.rs

/root/repo/target/release/deps/dmv_large-8dbeed437d46e4d8: crates/bench/src/bin/dmv_large.rs

crates/bench/src/bin/dmv_large.rs:
