/root/repo/target/release/deps/dmv_large-98d14bbbbfc34517.d: crates/bench/src/bin/dmv_large.rs

/root/repo/target/release/deps/dmv_large-98d14bbbbfc34517: crates/bench/src/bin/dmv_large.rs

crates/bench/src/bin/dmv_large.rs:
