/root/repo/target/release/deps/dps-40c4af78e35a379a.d: crates/bench/benches/dps.rs

/root/repo/target/release/deps/dps-40c4af78e35a379a: crates/bench/benches/dps.rs

crates/bench/benches/dps.rs:
