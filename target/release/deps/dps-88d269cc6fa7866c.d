/root/repo/target/release/deps/dps-88d269cc6fa7866c.d: crates/bench/benches/dps.rs

/root/repo/target/release/deps/dps-88d269cc6fa7866c: crates/bench/benches/dps.rs

crates/bench/benches/dps.rs:
