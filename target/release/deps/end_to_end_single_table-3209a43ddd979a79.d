/root/repo/target/release/deps/end_to_end_single_table-3209a43ddd979a79.d: tests/end_to_end_single_table.rs

/root/repo/target/release/deps/end_to_end_single_table-3209a43ddd979a79: tests/end_to_end_single_table.rs

tests/end_to_end_single_table.rs:
