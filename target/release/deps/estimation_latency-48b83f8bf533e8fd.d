/root/repo/target/release/deps/estimation_latency-48b83f8bf533e8fd.d: crates/bench/benches/estimation_latency.rs

/root/repo/target/release/deps/estimation_latency-48b83f8bf533e8fd: crates/bench/benches/estimation_latency.rs

crates/bench/benches/estimation_latency.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
