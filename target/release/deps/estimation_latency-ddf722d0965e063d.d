/root/repo/target/release/deps/estimation_latency-ddf722d0965e063d.d: crates/bench/benches/estimation_latency.rs

/root/repo/target/release/deps/estimation_latency-ddf722d0965e063d: crates/bench/benches/estimation_latency.rs

crates/bench/benches/estimation_latency.rs:
