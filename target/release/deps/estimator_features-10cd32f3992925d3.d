/root/repo/target/release/deps/estimator_features-10cd32f3992925d3.d: crates/core/tests/estimator_features.rs

/root/repo/target/release/deps/estimator_features-10cd32f3992925d3: crates/core/tests/estimator_features.rs

crates/core/tests/estimator_features.rs:
