/root/repo/target/release/deps/estimator_features-e20fef904f246593.d: crates/core/tests/estimator_features.rs

/root/repo/target/release/deps/estimator_features-e20fef904f246593: crates/core/tests/estimator_features.rs

crates/core/tests/estimator_features.rs:
