/root/repo/target/release/deps/figure3-257f5771b38d2435.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-257f5771b38d2435: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
