/root/repo/target/release/deps/figure3-678a319dff08cfb1.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-678a319dff08cfb1: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
