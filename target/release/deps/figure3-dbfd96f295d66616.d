/root/repo/target/release/deps/figure3-dbfd96f295d66616.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-dbfd96f295d66616: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
