/root/repo/target/release/deps/figure3-e1a1066d6f345221.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-e1a1066d6f345221: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
