/root/repo/target/release/deps/figure4-0a1384ed0102a236.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-0a1384ed0102a236: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
