/root/repo/target/release/deps/figure4-547396ae29499f42.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-547396ae29499f42: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
