/root/repo/target/release/deps/figure4-62c5f787e9d0a543.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-62c5f787e9d0a543: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
