/root/repo/target/release/deps/figure4-df21c59d04aee5d4.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-df21c59d04aee5d4: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
