/root/repo/target/release/deps/figure5-44f4f9ce1d8537ac.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-44f4f9ce1d8537ac: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
