/root/repo/target/release/deps/figure5-8b6d5489f51a0cd8.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-8b6d5489f51a0cd8: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
