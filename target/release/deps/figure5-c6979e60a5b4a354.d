/root/repo/target/release/deps/figure5-c6979e60a5b4a354.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-c6979e60a5b4a354: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
