/root/repo/target/release/deps/figure5-d3fb690dfbb9ab0b.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-d3fb690dfbb9ab0b: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
