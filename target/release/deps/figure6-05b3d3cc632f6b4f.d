/root/repo/target/release/deps/figure6-05b3d3cc632f6b4f.d: crates/bench/src/bin/figure6.rs

/root/repo/target/release/deps/figure6-05b3d3cc632f6b4f: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
