/root/repo/target/release/deps/figure6-0ee7bddb5bdf562a.d: crates/bench/src/bin/figure6.rs

/root/repo/target/release/deps/figure6-0ee7bddb5bdf562a: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
