/root/repo/target/release/deps/figure6-72344d67b6526490.d: crates/bench/src/bin/figure6.rs

/root/repo/target/release/deps/figure6-72344d67b6526490: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
