/root/repo/target/release/deps/figure6-a6c2f39b5a5d3fd2.d: crates/bench/src/bin/figure6.rs

/root/repo/target/release/deps/figure6-a6c2f39b5a5d3fd2: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
