/root/repo/target/release/deps/generator_properties-699666460e4ad5db.d: crates/data/tests/generator_properties.rs

/root/repo/target/release/deps/generator_properties-699666460e4ad5db: crates/data/tests/generator_properties.rs

crates/data/tests/generator_properties.rs:
