/root/repo/target/release/deps/generator_properties-9403f4578516a757.d: crates/data/tests/generator_properties.rs

/root/repo/target/release/deps/generator_properties-9403f4578516a757: crates/data/tests/generator_properties.rs

crates/data/tests/generator_properties.rs:
