/root/repo/target/release/deps/incremental_data-7f960a9909908a56.d: crates/bench/src/bin/incremental_data.rs

/root/repo/target/release/deps/incremental_data-7f960a9909908a56: crates/bench/src/bin/incremental_data.rs

crates/bench/src/bin/incremental_data.rs:
