/root/repo/target/release/deps/incremental_data-924d0bd2f6a04039.d: crates/bench/src/bin/incremental_data.rs

/root/repo/target/release/deps/incremental_data-924d0bd2f6a04039: crates/bench/src/bin/incremental_data.rs

crates/bench/src/bin/incremental_data.rs:
