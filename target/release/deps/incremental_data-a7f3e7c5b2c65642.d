/root/repo/target/release/deps/incremental_data-a7f3e7c5b2c65642.d: crates/bench/src/bin/incremental_data.rs

/root/repo/target/release/deps/incremental_data-a7f3e7c5b2c65642: crates/bench/src/bin/incremental_data.rs

crates/bench/src/bin/incremental_data.rs:
