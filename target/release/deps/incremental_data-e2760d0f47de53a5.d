/root/repo/target/release/deps/incremental_data-e2760d0f47de53a5.d: crates/bench/src/bin/incremental_data.rs

/root/repo/target/release/deps/incremental_data-e2760d0f47de53a5: crates/bench/src/bin/incremental_data.rs

crates/bench/src/bin/incremental_data.rs:
