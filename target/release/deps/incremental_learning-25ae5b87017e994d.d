/root/repo/target/release/deps/incremental_learning-25ae5b87017e994d.d: tests/incremental_learning.rs

/root/repo/target/release/deps/incremental_learning-25ae5b87017e994d: tests/incremental_learning.rs

tests/incremental_learning.rs:
