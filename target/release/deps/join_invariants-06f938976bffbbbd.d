/root/repo/target/release/deps/join_invariants-06f938976bffbbbd.d: crates/join/tests/join_invariants.rs

/root/repo/target/release/deps/join_invariants-06f938976bffbbbd: crates/join/tests/join_invariants.rs

crates/join/tests/join_invariants.rs:
