/root/repo/target/release/deps/join_invariants-94f75c3a06e67444.d: crates/join/tests/join_invariants.rs

/root/repo/target/release/deps/join_invariants-94f75c3a06e67444: crates/join/tests/join_invariants.rs

crates/join/tests/join_invariants.rs:
