/root/repo/target/release/deps/join_pipeline-d1b1327d4bf31732.d: tests/join_pipeline.rs

/root/repo/target/release/deps/join_pipeline-d1b1327d4bf31732: tests/join_pipeline.rs

tests/join_pipeline.rs:
