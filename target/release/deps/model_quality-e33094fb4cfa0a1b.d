/root/repo/target/release/deps/model_quality-e33094fb4cfa0a1b.d: tests/model_quality.rs

/root/repo/target/release/deps/model_quality-e33094fb4cfa0a1b: tests/model_quality.rs

tests/model_quality.rs:
