/root/repo/target/release/deps/progressive_sampling-8a2684b0668820f6.d: crates/bench/benches/progressive_sampling.rs

/root/repo/target/release/deps/progressive_sampling-8a2684b0668820f6: crates/bench/benches/progressive_sampling.rs

crates/bench/benches/progressive_sampling.rs:
