/root/repo/target/release/deps/progressive_sampling-f9a4a1563e2641a6.d: crates/bench/benches/progressive_sampling.rs

/root/repo/target/release/deps/progressive_sampling-f9a4a1563e2641a6: crates/bench/benches/progressive_sampling.rs

crates/bench/benches/progressive_sampling.rs:
