/root/repo/target/release/deps/properties-dd3ea83ec4cd67e4.d: tests/properties.rs

/root/repo/target/release/deps/properties-dd3ea83ec4cd67e4: tests/properties.rs

tests/properties.rs:
