/root/repo/target/release/deps/proptest-a6f4fd21634a49a1.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/proptest-a6f4fd21634a49a1: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
