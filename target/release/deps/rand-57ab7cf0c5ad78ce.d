/root/repo/target/release/deps/rand-57ab7cf0c5ad78ce.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-57ab7cf0c5ad78ce: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
