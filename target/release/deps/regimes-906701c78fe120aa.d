/root/repo/target/release/deps/regimes-906701c78fe120aa.d: crates/estimators/tests/regimes.rs

/root/repo/target/release/deps/regimes-906701c78fe120aa: crates/estimators/tests/regimes.rs

crates/estimators/tests/regimes.rs:
