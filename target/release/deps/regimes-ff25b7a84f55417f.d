/root/repo/target/release/deps/regimes-ff25b7a84f55417f.d: crates/estimators/tests/regimes.rs

/root/repo/target/release/deps/regimes-ff25b7a84f55417f: crates/estimators/tests/regimes.rs

crates/estimators/tests/regimes.rs:
