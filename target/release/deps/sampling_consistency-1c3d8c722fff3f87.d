/root/repo/target/release/deps/sampling_consistency-1c3d8c722fff3f87.d: crates/core/tests/sampling_consistency.rs

/root/repo/target/release/deps/sampling_consistency-1c3d8c722fff3f87: crates/core/tests/sampling_consistency.rs

crates/core/tests/sampling_consistency.rs:
