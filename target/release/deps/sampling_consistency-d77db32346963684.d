/root/repo/target/release/deps/sampling_consistency-d77db32346963684.d: crates/core/tests/sampling_consistency.rs

/root/repo/target/release/deps/sampling_consistency-d77db32346963684: crates/core/tests/sampling_consistency.rs

crates/core/tests/sampling_consistency.rs:
