/root/repo/target/release/deps/table2-a38ecb38b0c800dc.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-a38ecb38b0c800dc: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
