/root/repo/target/release/deps/table2-d858852568486230.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d858852568486230: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
