/root/repo/target/release/deps/table2-e585787da155e825.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e585787da155e825: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
