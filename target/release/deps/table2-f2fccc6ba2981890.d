/root/repo/target/release/deps/table2-f2fccc6ba2981890.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-f2fccc6ba2981890: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
