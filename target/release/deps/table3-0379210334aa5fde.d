/root/repo/target/release/deps/table3-0379210334aa5fde.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-0379210334aa5fde: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
