/root/repo/target/release/deps/table3-2027a3be60e674df.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-2027a3be60e674df: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
