/root/repo/target/release/deps/table3-6029c9f9df434916.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-6029c9f9df434916: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
