/root/repo/target/release/deps/table3-7dbdb34ee7e6cab8.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-7dbdb34ee7e6cab8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
