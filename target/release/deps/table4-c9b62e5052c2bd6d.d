/root/repo/target/release/deps/table4-c9b62e5052c2bd6d.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-c9b62e5052c2bd6d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
