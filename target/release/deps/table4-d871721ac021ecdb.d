/root/repo/target/release/deps/table4-d871721ac021ecdb.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-d871721ac021ecdb: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
