/root/repo/target/release/deps/table4-f789a39bd17e1674.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f789a39bd17e1674: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
