/root/repo/target/release/deps/table4-f875420eaaecef0f.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f875420eaaecef0f: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
