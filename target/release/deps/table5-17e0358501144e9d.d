/root/repo/target/release/deps/table5-17e0358501144e9d.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-17e0358501144e9d: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
