/root/repo/target/release/deps/table5-7f8a7635d7a72dbb.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-7f8a7635d7a72dbb: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
