/root/repo/target/release/deps/table5-ba5faa5f75e4a145.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-ba5faa5f75e4a145: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
