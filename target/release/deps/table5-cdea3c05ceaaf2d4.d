/root/repo/target/release/deps/table5-cdea3c05ceaaf2d4.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-cdea3c05ceaaf2d4: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
