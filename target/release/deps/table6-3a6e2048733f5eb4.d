/root/repo/target/release/deps/table6-3a6e2048733f5eb4.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-3a6e2048733f5eb4: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
