/root/repo/target/release/deps/table6-6fe253b40fe341e0.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-6fe253b40fe341e0: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
