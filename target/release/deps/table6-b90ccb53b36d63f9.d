/root/repo/target/release/deps/table6-b90ccb53b36d63f9.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-b90ccb53b36d63f9: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
