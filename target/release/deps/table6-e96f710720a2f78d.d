/root/repo/target/release/deps/table6-e96f710720a2f78d.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-e96f710720a2f78d: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
