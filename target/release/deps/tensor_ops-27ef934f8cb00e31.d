/root/repo/target/release/deps/tensor_ops-27ef934f8cb00e31.d: crates/bench/benches/tensor_ops.rs

/root/repo/target/release/deps/tensor_ops-27ef934f8cb00e31: crates/bench/benches/tensor_ops.rs

crates/bench/benches/tensor_ops.rs:
