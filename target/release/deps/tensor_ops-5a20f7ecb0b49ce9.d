/root/repo/target/release/deps/tensor_ops-5a20f7ecb0b49ce9.d: crates/bench/benches/tensor_ops.rs

/root/repo/target/release/deps/tensor_ops-5a20f7ecb0b49ce9: crates/bench/benches/tensor_ops.rs

crates/bench/benches/tensor_ops.rs:
