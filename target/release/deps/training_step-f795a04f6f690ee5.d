/root/repo/target/release/deps/training_step-f795a04f6f690ee5.d: crates/bench/benches/training_step.rs

/root/repo/target/release/deps/training_step-f795a04f6f690ee5: crates/bench/benches/training_step.rs

crates/bench/benches/training_step.rs:
