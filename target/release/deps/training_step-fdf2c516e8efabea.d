/root/repo/target/release/deps/training_step-fdf2c516e8efabea.d: crates/bench/benches/training_step.rs

/root/repo/target/release/deps/training_step-fdf2c516e8efabea: crates/bench/benches/training_step.rs

crates/bench/benches/training_step.rs:
