/root/repo/target/release/deps/uae-4726474613760174.d: src/lib.rs

/root/repo/target/release/deps/libuae-4726474613760174.rlib: src/lib.rs

/root/repo/target/release/deps/libuae-4726474613760174.rmeta: src/lib.rs

src/lib.rs:
