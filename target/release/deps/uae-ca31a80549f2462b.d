/root/repo/target/release/deps/uae-ca31a80549f2462b.d: src/lib.rs

/root/repo/target/release/deps/libuae-ca31a80549f2462b.rlib: src/lib.rs

/root/repo/target/release/deps/libuae-ca31a80549f2462b.rmeta: src/lib.rs

src/lib.rs:
