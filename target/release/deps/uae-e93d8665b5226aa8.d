/root/repo/target/release/deps/uae-e93d8665b5226aa8.d: src/lib.rs

/root/repo/target/release/deps/uae-e93d8665b5226aa8: src/lib.rs

src/lib.rs:
