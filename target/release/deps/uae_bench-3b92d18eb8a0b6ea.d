/root/repo/target/release/deps/uae_bench-3b92d18eb8a0b6ea.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libuae_bench-3b92d18eb8a0b6ea.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libuae_bench-3b92d18eb8a0b6ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
