/root/repo/target/release/deps/uae_bench-4a32168ca52ac89c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libuae_bench-4a32168ca52ac89c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libuae_bench-4a32168ca52ac89c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
