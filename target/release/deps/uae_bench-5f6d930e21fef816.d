/root/repo/target/release/deps/uae_bench-5f6d930e21fef816.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/uae_bench-5f6d930e21fef816: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
