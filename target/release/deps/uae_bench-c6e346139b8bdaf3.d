/root/repo/target/release/deps/uae_bench-c6e346139b8bdaf3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/uae_bench-c6e346139b8bdaf3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
