/root/repo/target/release/deps/uae_core-304d8a99d15f550d.d: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

/root/repo/target/release/deps/libuae_core-304d8a99d15f550d.rlib: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

/root/repo/target/release/deps/libuae_core-304d8a99d15f550d.rmeta: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/infer_batch.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

crates/core/src/lib.rs:
crates/core/src/dps.rs:
crates/core/src/encoding.rs:
crates/core/src/estimator.rs:
crates/core/src/infer.rs:
crates/core/src/infer_batch.rs:
crates/core/src/model.rs:
crates/core/src/ordering.rs:
crates/core/src/serialize.rs:
crates/core/src/sf.rs:
crates/core/src/train.rs:
crates/core/src/vquery.rs:
