/root/repo/target/release/deps/uae_core-49b158c4b321d720.d: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

/root/repo/target/release/deps/libuae_core-49b158c4b321d720.rlib: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

/root/repo/target/release/deps/libuae_core-49b158c4b321d720.rmeta: crates/core/src/lib.rs crates/core/src/dps.rs crates/core/src/encoding.rs crates/core/src/estimator.rs crates/core/src/infer.rs crates/core/src/model.rs crates/core/src/ordering.rs crates/core/src/serialize.rs crates/core/src/sf.rs crates/core/src/train.rs crates/core/src/vquery.rs

crates/core/src/lib.rs:
crates/core/src/dps.rs:
crates/core/src/encoding.rs:
crates/core/src/estimator.rs:
crates/core/src/infer.rs:
crates/core/src/model.rs:
crates/core/src/ordering.rs:
crates/core/src/serialize.rs:
crates/core/src/sf.rs:
crates/core/src/train.rs:
crates/core/src/vquery.rs:
