/root/repo/target/release/deps/uae_data-1a9221862df1fe01.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/release/deps/libuae_data-1a9221862df1fe01.rlib: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/release/deps/libuae_data-1a9221862df1fe01.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/par.rs:
crates/data/src/stats.rs:
crates/data/src/synth.rs:
crates/data/src/table.rs:
crates/data/src/value.rs:
