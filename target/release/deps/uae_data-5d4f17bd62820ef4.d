/root/repo/target/release/deps/uae_data-5d4f17bd62820ef4.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/release/deps/libuae_data-5d4f17bd62820ef4.rlib: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/release/deps/libuae_data-5d4f17bd62820ef4.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/par.rs:
crates/data/src/stats.rs:
crates/data/src/synth.rs:
crates/data/src/table.rs:
crates/data/src/value.rs:
