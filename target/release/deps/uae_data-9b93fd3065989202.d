/root/repo/target/release/deps/uae_data-9b93fd3065989202.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

/root/repo/target/release/deps/uae_data-9b93fd3065989202: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/par.rs crates/data/src/stats.rs crates/data/src/synth.rs crates/data/src/table.rs crates/data/src/value.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/par.rs:
crates/data/src/stats.rs:
crates/data/src/synth.rs:
crates/data/src/table.rs:
crates/data/src/value.rs:
