/root/repo/target/release/deps/uae_estimators-730e1b56903efd21.d: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs

/root/repo/target/release/deps/libuae_estimators-730e1b56903efd21.rlib: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs

/root/repo/target/release/deps/libuae_estimators-730e1b56903efd21.rmeta: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs

crates/estimators/src/lib.rs:
crates/estimators/src/bayesnet.rs:
crates/estimators/src/features.rs:
crates/estimators/src/histogram.rs:
crates/estimators/src/kde.rs:
crates/estimators/src/lr.rs:
crates/estimators/src/mhist.rs:
crates/estimators/src/mscn.rs:
crates/estimators/src/quicksel.rs:
crates/estimators/src/sampling.rs:
crates/estimators/src/spn.rs:
crates/estimators/src/stholes.rs:
