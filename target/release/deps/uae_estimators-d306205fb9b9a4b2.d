/root/repo/target/release/deps/uae_estimators-d306205fb9b9a4b2.d: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs

/root/repo/target/release/deps/uae_estimators-d306205fb9b9a4b2: crates/estimators/src/lib.rs crates/estimators/src/bayesnet.rs crates/estimators/src/features.rs crates/estimators/src/histogram.rs crates/estimators/src/kde.rs crates/estimators/src/lr.rs crates/estimators/src/mhist.rs crates/estimators/src/mscn.rs crates/estimators/src/quicksel.rs crates/estimators/src/sampling.rs crates/estimators/src/spn.rs crates/estimators/src/stholes.rs

crates/estimators/src/lib.rs:
crates/estimators/src/bayesnet.rs:
crates/estimators/src/features.rs:
crates/estimators/src/histogram.rs:
crates/estimators/src/kde.rs:
crates/estimators/src/lr.rs:
crates/estimators/src/mhist.rs:
crates/estimators/src/mscn.rs:
crates/estimators/src/quicksel.rs:
crates/estimators/src/sampling.rs:
crates/estimators/src/spn.rs:
crates/estimators/src/stholes.rs:
