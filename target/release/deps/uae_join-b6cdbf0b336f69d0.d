/root/repo/target/release/deps/uae_join-b6cdbf0b336f69d0.d: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

/root/repo/target/release/deps/libuae_join-b6cdbf0b336f69d0.rlib: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

/root/repo/target/release/deps/libuae_join-b6cdbf0b336f69d0.rmeta: crates/join/src/lib.rs crates/join/src/baselines.rs crates/join/src/estimator.rs crates/join/src/executor.rs crates/join/src/optimizer.rs crates/join/src/sampler.rs crates/join/src/schema.rs crates/join/src/synth.rs crates/join/src/workload.rs

crates/join/src/lib.rs:
crates/join/src/baselines.rs:
crates/join/src/estimator.rs:
crates/join/src/executor.rs:
crates/join/src/optimizer.rs:
crates/join/src/sampler.rs:
crates/join/src/schema.rs:
crates/join/src/synth.rs:
crates/join/src/workload.rs:
