/root/repo/target/release/deps/uae_query-504332bf673d7158.d: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

/root/repo/target/release/deps/uae_query-504332bf673d7158: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

crates/query/src/lib.rs:
crates/query/src/estimator.rs:
crates/query/src/executor.rs:
crates/query/src/metrics.rs:
crates/query/src/parse.rs:
crates/query/src/predicate.rs:
crates/query/src/region.rs:
crates/query/src/report.rs:
crates/query/src/workload.rs:
