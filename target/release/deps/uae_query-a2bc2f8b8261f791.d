/root/repo/target/release/deps/uae_query-a2bc2f8b8261f791.d: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

/root/repo/target/release/deps/libuae_query-a2bc2f8b8261f791.rlib: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

/root/repo/target/release/deps/libuae_query-a2bc2f8b8261f791.rmeta: crates/query/src/lib.rs crates/query/src/estimator.rs crates/query/src/executor.rs crates/query/src/metrics.rs crates/query/src/parse.rs crates/query/src/predicate.rs crates/query/src/region.rs crates/query/src/report.rs crates/query/src/workload.rs

crates/query/src/lib.rs:
crates/query/src/estimator.rs:
crates/query/src/executor.rs:
crates/query/src/metrics.rs:
crates/query/src/parse.rs:
crates/query/src/predicate.rs:
crates/query/src/region.rs:
crates/query/src/report.rs:
crates/query/src/workload.rs:
