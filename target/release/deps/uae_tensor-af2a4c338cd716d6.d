/root/repo/target/release/deps/uae_tensor-af2a4c338cd716d6.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libuae_tensor-af2a4c338cd716d6.rlib: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libuae_tensor-af2a4c338cd716d6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
