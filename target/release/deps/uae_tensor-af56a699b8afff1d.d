/root/repo/target/release/deps/uae_tensor-af56a699b8afff1d.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/uae_tensor-af56a699b8afff1d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
