/root/repo/target/release/deps/workload_properties-774ee7deebfbc0c6.d: crates/query/tests/workload_properties.rs

/root/repo/target/release/deps/workload_properties-774ee7deebfbc0c6: crates/query/tests/workload_properties.rs

crates/query/tests/workload_properties.rs:
