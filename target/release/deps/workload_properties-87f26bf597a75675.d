/root/repo/target/release/deps/workload_properties-87f26bf597a75675.d: crates/query/tests/workload_properties.rs

/root/repo/target/release/deps/workload_properties-87f26bf597a75675: crates/query/tests/workload_properties.rs

crates/query/tests/workload_properties.rs:
