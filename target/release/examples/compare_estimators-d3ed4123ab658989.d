/root/repo/target/release/examples/compare_estimators-d3ed4123ab658989.d: examples/compare_estimators.rs

/root/repo/target/release/examples/compare_estimators-d3ed4123ab658989: examples/compare_estimators.rs

examples/compare_estimators.rs:
