/root/repo/target/release/examples/custom_csv-0b6e12534572db31.d: examples/custom_csv.rs

/root/repo/target/release/examples/custom_csv-0b6e12534572db31: examples/custom_csv.rs

examples/custom_csv.rs:
