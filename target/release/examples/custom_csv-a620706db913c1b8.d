/root/repo/target/release/examples/custom_csv-a620706db913c1b8.d: examples/custom_csv.rs

/root/repo/target/release/examples/custom_csv-a620706db913c1b8: examples/custom_csv.rs

examples/custom_csv.rs:
