/root/repo/target/release/examples/join_cardinality-d51ab603540e0292.d: examples/join_cardinality.rs

/root/repo/target/release/examples/join_cardinality-d51ab603540e0292: examples/join_cardinality.rs

examples/join_cardinality.rs:
