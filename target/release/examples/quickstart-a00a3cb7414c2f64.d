/root/repo/target/release/examples/quickstart-a00a3cb7414c2f64.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a00a3cb7414c2f64: examples/quickstart.rs

examples/quickstart.rs:
