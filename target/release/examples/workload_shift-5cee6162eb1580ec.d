/root/repo/target/release/examples/workload_shift-5cee6162eb1580ec.d: examples/workload_shift.rs

/root/repo/target/release/examples/workload_shift-5cee6162eb1580ec: examples/workload_shift.rs

examples/workload_shift.rs:
