//! End-to-end integration: every estimator trains on the same dataset and
//! produces sane estimates through the shared `CardEstimator`
//! interface (a miniature of the Tables 2–4 protocol).

use std::collections::HashSet;

use uae::core::{Uae, UaeConfig};
use uae::estimators::{
    BayesNetEstimator, FeedbackKdeEstimator, HistogramEstimator, KdeEstimator,
    LinearRegressionEstimator, MscnConfig, MscnEstimator, SamplingEstimator, SpnConfig,
    SpnEstimator,
};
use uae::query::{
    default_bounded_column, evaluate, fingerprints, generate_workload, CardEstimator, LabeledQuery,
    WorkloadSpec,
};

struct Fixture {
    table: uae::data::Table,
    train: Vec<LabeledQuery>,
    test: Vec<LabeledQuery>,
}

fn fixture() -> Fixture {
    let table = uae::data::census_like(3_000, 11);
    let col = default_bounded_column(&table);
    let train = generate_workload(&table, &WorkloadSpec::in_workload(col, 120, 1), &HashSet::new());
    let test =
        generate_workload(&table, &WorkloadSpec::in_workload(col, 40, 2), &fingerprints(&train));
    Fixture { table, train, test }
}

fn check(est: &dyn CardEstimator, fx: &Fixture, median_bound: f64) {
    let ev = evaluate(est, &fx.test);
    assert!(
        ev.errors.median <= median_bound,
        "{}: median q-error {} exceeds {median_bound}",
        est.name(),
        ev.errors.median
    );
    assert!(ev.errors.max.is_finite(), "{}: non-finite max error", est.name());
    assert!(est.size_bytes() > 0, "{}: zero-size model", est.name());
    // Estimates must be non-negative and bounded by the table size
    // (plus slack for the regression-style models).
    for lq in fx.test.iter().take(10) {
        let card = est.estimate_card(&lq.query);
        assert!(card >= 0.0, "{}: negative estimate {card}", est.name());
        assert!(
            card <= fx.table.num_rows() as f64 * 10.0,
            "{}: estimate {card} wildly above table size",
            est.name()
        );
    }
}

#[test]
fn all_estimators_run_the_full_pipeline() {
    let fx = fixture();
    check(&SamplingEstimator::new(&fx.table, 0.1, 3), &fx, 8.0);
    check(&HistogramEstimator::new(&fx.table, 64), &fx, 25.0);
    check(&BayesNetEstimator::new(&fx.table, 64), &fx, 12.0);
    check(&KdeEstimator::new(&fx.table, 0.1, 4), &fx, 12.0);
    check(
        &FeedbackKdeEstimator::new(KdeEstimator::new(&fx.table, 0.1, 4), &fx.train, 5, 0.3),
        &fx,
        12.0,
    );
    check(&SpnEstimator::new(&fx.table, &SpnConfig::default()), &fx, 10.0);
    check(&LinearRegressionEstimator::new(&fx.table, &fx.train, 1e-3), &fx, 30.0);
    check(
        &MscnEstimator::new(
            &fx.table,
            &fx.train,
            &MscnConfig { hidden: 64, epochs: 20, ..MscnConfig::default() },
        ),
        &fx,
        30.0,
    );
}

#[test]
fn uae_family_runs_the_full_pipeline() {
    let fx = fixture();
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 48;
    cfg.train.dps.samples = 8;
    cfg.estimate_samples = 100;

    let mut naru = Uae::new(&fx.table, cfg.clone()).with_name("Naru");
    naru.train_data(4);
    check(&naru, &fx, 6.0);

    let mut uae_q = Uae::new(&fx.table, cfg.clone()).with_name("UAE-Q");
    uae_q.train_queries(&fx.train, 4);
    check(&uae_q, &fx, 25.0);

    let mut hybrid = Uae::new(&fx.table, cfg);
    hybrid.train_hybrid(&fx.train, 4);
    check(&hybrid, &fx, 6.0);
}

#[test]
fn trained_beats_untrained() {
    let fx = fixture();
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 48;
    cfg.estimate_samples = 100;
    let untrained = Uae::new(&fx.table, cfg.clone());
    let eu = evaluate(&untrained, &fx.test);
    let mut trained = Uae::new(&fx.table, cfg);
    trained.train_data(4);
    let et = evaluate(&trained, &fx.test);
    assert!(
        et.errors.median < eu.errors.median,
        "training must help: untrained {} vs trained {}",
        eu.errors.median,
        et.errors.median
    );
}
