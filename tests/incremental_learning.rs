//! Integration test of §4.5: incremental data and incremental query
//! workload, the two ingestion modes that distinguish UAE from retraining
//! estimators.

use std::collections::HashSet;

use uae::core::{Uae, UaeConfig};
use uae::query::{default_bounded_column, evaluate, generate_workload, BoundedSpec, WorkloadSpec};

fn cfg() -> UaeConfig {
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 48;
    cfg.train.dps.samples = 8;
    cfg.estimate_samples = 100;
    cfg
}

#[test]
fn workload_ingestion_beats_stale_model_on_shifted_queries() {
    let table = uae::data::dmv_like(6_000, 21);
    let col = default_bounded_column(&table);

    // Shifted workload: centers in the top fifth of the domain.
    let spec = |n: usize, seed: u64| WorkloadSpec {
        seed,
        num_queries: n,
        bounded: Some(BoundedSpec { column: col, center_window: (0.8, 1.0), volume_frac: 0.01 }),
        nf_range: (2, 4),
    };
    let shift_train = generate_workload(&table, &spec(100, 31), &HashSet::new());
    let shift_test =
        generate_workload(&table, &spec(40, 32), &uae::query::fingerprints(&shift_train));

    let mut stale = Uae::new(&table, cfg());
    stale.train_data(3);
    let mut refined = Uae::new(&table, cfg());
    refined.train_data(3);
    refined.ingest_workload(&shift_train, 8);

    let es = evaluate(&stale, &shift_test);
    let er = evaluate(&refined, &shift_test);
    assert!(
        er.errors.mean <= es.errors.mean * 1.05,
        "ingestion should not hurt the shifted region: stale {} vs refined {}",
        es.errors.mean,
        er.errors.mean
    );
}

#[test]
fn data_ingestion_tracks_new_rows() {
    // Train on half the table, ingest the other half, and check that a
    // query whose matches live mostly in the new half is estimated better.
    let table = uae::data::census_like(4_000, 9);
    let first: Vec<usize> = (0..2_000).collect();
    let second: Vec<usize> = (2_000..4_000).collect();
    let half = table.take_rows(&first);
    let rest = table.take_rows(&second);

    let mut model = Uae::new(&half, cfg());
    model.train_data(3);
    let before_rows = model.table().num_rows();
    model.ingest_data(&rest, 3);
    assert_eq!(model.table().num_rows(), before_rows + 2_000);

    // After ingestion the model's selectivities refer to the full table.
    let w = generate_workload(&table, &WorkloadSpec::random(30, 5), &HashSet::new());
    let ev = evaluate(&model, &w);
    assert!(ev.errors.median < 8.0, "post-ingestion median q-error {} too high", ev.errors.median);
}

#[test]
fn ingestion_does_not_catastrophically_forget() {
    // The paper: a small number of query epochs refines the workload region
    // without destroying overall data knowledge.
    let table = uae::data::dmv_like(6_000, 22);
    let col = default_bounded_column(&table);
    let random_test = generate_workload(&table, &WorkloadSpec::random(40, 77), &HashSet::new());

    let mut model = Uae::new(&table, cfg());
    model.train_data(3);
    let before = evaluate(&model, &random_test);

    let shift = generate_workload(
        &table,
        &WorkloadSpec {
            seed: 41,
            num_queries: 80,
            bounded: Some(BoundedSpec {
                column: col,
                center_window: (0.0, 0.2),
                volume_frac: 0.01,
            }),
            nf_range: (2, 4),
        },
        &HashSet::new(),
    );
    model.ingest_workload(&shift, 6);
    let after = evaluate(&model, &random_test);
    assert!(
        after.errors.median <= before.errors.median * 3.0 + 1.0,
        "catastrophic forgetting: random-query median went {} → {}",
        before.errors.median,
        after.errors.median
    );
}
