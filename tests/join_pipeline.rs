//! Integration tests of the join stack: sampling, estimation (including
//! fanout scaling for subset joins), the join baselines, and the
//! optimizer study.

use std::collections::HashSet;

use uae::core::UaeConfig;
use uae::join::optimizer::{study_query, SubplanEstimator, TruthEstimator};
use uae::join::{
    generate_join_workload, imdb_like, sample_outer_join, JoinCardEstimator, JoinExecutor,
    JoinQuery, JoinSpn, JoinUae, JoinWorkloadSpec,
};
use uae::query::metrics::q_error;

fn quick_cfg() -> UaeConfig {
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 48;
    cfg.train.dps.samples = 8;
    cfg.train.lambda = 1.0;
    cfg.estimate_samples = 200;
    cfg
}

#[test]
fn neurocard_and_deepdb_estimate_joins() {
    let schema = imdb_like(600, 31);
    let exec = JoinExecutor::new(&schema);

    let mut nc =
        JoinUae::new(sample_outer_join(&schema, 4_000, 16, 1), quick_cfg()).with_name("NeuroCard");
    nc.train_data(4);
    let spn = JoinSpn::new(sample_outer_join(&schema, 4_000, 16, 2), &Default::default());

    // A mix of full and subset joins with predicates.
    let queries = vec![
        JoinQuery { dims: vec![0, 1, 2], ..Default::default() },
        JoinQuery {
            dims: vec![0, 1],
            fact_preds: vec![uae::query::Predicate::ge(0, 60i64)],
            dim_preds: vec![],
        },
        JoinQuery { dims: vec![2], ..Default::default() },
    ];
    for q in &queries {
        let truth = exec.cardinality(q) as f64;
        for est in [&nc as &dyn JoinCardEstimator, &spn] {
            let e = est.estimate_join_card(q);
            let err = q_error(truth, e);
            assert!(
                err < 8.0,
                "{} q-error {err} on dims {:?} (true {truth}, est {e})",
                est.name(),
                q.dims
            );
        }
    }
}

#[test]
fn hybrid_join_training_improves_focused_queries() {
    let schema = imdb_like(600, 32);
    let train =
        generate_join_workload(&schema, &JoinWorkloadSpec::focused(0, 60, 5), &HashSet::new());
    let test = generate_join_workload(
        &schema,
        &JoinWorkloadSpec::focused(0, 25, 6),
        &uae::join::workload::fingerprints(&train),
    );

    let median_err = |est: &JoinUae| {
        let mut errs: Vec<f64> = test
            .iter()
            .map(|lq| q_error(lq.cardinality as f64, est.estimate_join_card(&lq.query)))
            .collect();
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    };

    let mut uae = JoinUae::new(sample_outer_join(&schema, 4_000, 16, 3), quick_cfg());
    uae.train_data(3);
    let before = median_err(&uae);
    uae.train_hybrid(&train, 4);
    let after = median_err(&uae);
    assert!(after <= before * 1.25, "hybrid join training should not regress: {before} → {after}");
    assert!(after < 6.0, "post-hybrid median q-error {after}");
}

#[test]
fn optimizer_prefers_better_estimates() {
    let schema = imdb_like(800, 33);
    let queries = generate_join_workload(
        &schema,
        &JoinWorkloadSpec {
            seed: 71,
            num_queries: 12,
            bounded: Some((0, (0.0, 1.0), 0.1)),
            nf_range: (2, 4),
            all_dims: true,
        },
        &HashSet::new(),
    );
    let truth = TruthEstimator::new(&schema);
    let mut geo = 1.0f64;
    for lq in &queries {
        let rows = study_query(&schema, &lq.query, &[&truth as &dyn SubplanEstimator]);
        // The true-cardinality plan can never be slower than the baseline's.
        assert!(rows[0].speedup_vs_baseline >= 1.0 - 1e-9);
        geo *= rows[0].speedup_vs_baseline;
    }
    geo = geo.powf(1.0 / queries.len() as f64);
    assert!(geo >= 1.0, "geometric-mean speedup of truth {geo} must be ≥ 1");
}

#[test]
fn subset_join_fanout_scaling_is_consistent() {
    // card(fact ⋈ d) computed via fanout scaling from the full-outer-join
    // distribution must track the exact subset join, not the 3-way join.
    let schema = imdb_like(500, 34);
    let exec = JoinExecutor::new(&schema);
    let all = JoinQuery { dims: vec![0, 1, 2], ..Default::default() };
    let subset = JoinQuery { dims: vec![0], ..Default::default() };
    let truth_all = exec.cardinality(&all) as f64;
    let truth_subset = exec.cardinality(&subset) as f64;
    assert!(
        (truth_all - truth_subset).abs() / truth_subset > 0.2,
        "fixture degenerate: subset and full joins too close"
    );

    let mut nc =
        JoinUae::new(sample_outer_join(&schema, 4_000, 16, 4), quick_cfg()).with_name("nc");
    nc.train_data(4);
    let est_subset = nc.estimate_join_card(&subset);
    let err_vs_subset = q_error(truth_subset, est_subset);
    let err_vs_all = q_error(truth_all, est_subset);
    assert!(
        err_vs_subset < err_vs_all,
        "estimate {est_subset} is closer to the full join ({truth_all}) than the subset \
         ({truth_subset}) — fanout scaling broken"
    );
}
