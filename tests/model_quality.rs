//! Statistical quality checks on the trained autoregressive model itself:
//! likelihood-trained conditionals approximate the data distribution, and
//! progressive-sampling estimates converge to exhaustive enumeration.

use uae::core::infer::{exhaustive_selectivity, joint_probability};
use uae::core::{ResMade, ResMadeConfig, Uae, UaeConfig, VirtualQuery, VirtualSchema};
use uae::data::{Table, Value};
use uae::query::{Predicate, Query};
use uae::tensor::ParamStore;

/// A small, strongly structured table: c1 ∈ 0..8 zipf-ish, c2 = c1 % 3,
/// c3 uniform-ish independent.
fn structured_table(rows: usize) -> Table {
    let mut c1 = Vec::with_capacity(rows);
    let mut c2 = Vec::with_capacity(rows);
    let mut c3 = Vec::with_capacity(rows);
    let mut state = 0x1234_5678u64;
    for _ in 0..rows {
        state = uae::data::synth::splitmix64(state);
        let a = ((state % 64) as f64).sqrt() as i64; // 0..8, skewed
        c1.push(Value::Int(a));
        c2.push(Value::Int(a % 3));
        state = uae::data::synth::splitmix64(state);
        c3.push(Value::Int((state % 5) as i64));
    }
    Table::from_columns("structured", vec![("a".into(), c1), ("b".into(), c2), ("c".into(), c3)])
}

fn trained_model(table: &Table) -> Uae {
    let mut cfg = UaeConfig {
        model: ResMadeConfig { hidden: 32, blocks: 1, seed: 3 },
        estimate_samples: 400,
        ..UaeConfig::default()
    };
    cfg.train.wildcard_prob = 0.15;
    let mut uae = Uae::new(table, cfg);
    uae.train_data(25);
    uae
}

#[test]
fn learned_joint_matches_empirical_distribution() {
    let table = structured_table(3_000);
    let uae = trained_model(&table);
    // Empirical joint of (a, b, c) codes.
    let mut counts = std::collections::HashMap::new();
    for r in 0..table.num_rows() {
        *counts.entry(table.row_codes(r)).or_insert(0usize) += 1;
    }
    let mut max_gap = 0.0f64;
    for (codes, count) in counts {
        let emp = count as f64 / table.num_rows() as f64;
        // Point query through the public API: a = v1 AND b = v2 AND c = v3.
        let q = Query::new(
            codes
                .iter()
                .enumerate()
                .map(|(c, &code)| Predicate::eq(c, table.column(c).dict()[code as usize].clone()))
                .collect(),
        );
        let est = uae.estimate_selectivity(&q);
        max_gap = max_gap.max((est - emp).abs());
    }
    assert!(max_gap < 0.05, "largest |model - empirical| point mass gap: {max_gap}");
}

#[test]
fn progressive_sampling_is_consistent_with_exhaustive_on_trained_model() {
    let table = structured_table(2_000);
    let uae = trained_model(&table);
    let q = Query::new(vec![Predicate::le(0, 4i64), Predicate::eq(1, 1i64)]);
    let est = uae.estimate_selectivity(&q);

    // Exhaustive enumeration through a fresh, identically-seeded model is
    // not available from the public estimator, so validate progressive
    // sampling against the *exact* executor instead: the trained model
    // should put the right mass on this region.
    let exec = uae::query::Executor::new(&table);
    let truth = exec.selectivity(&q);
    assert!((est - truth).abs() < 0.05, "progressive estimate {est} vs true selectivity {truth}");
}

#[test]
fn untrained_model_is_a_valid_distribution() {
    // Even before training, the autoregressive factorization must define a
    // proper distribution (Eq. 1): joint probabilities sum to 1.
    let table = structured_table(500);
    let schema = VirtualSchema::build(&table, usize::MAX);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 2, seed: 9 });
    let raw = model.snapshot(&store);
    let mut total = 0.0;
    for a in 0..schema.codec(0).domain() as u32 {
        for b in 0..schema.codec(1).domain() as u32 {
            for c in 0..schema.codec(2).domain() as u32 {
                total += joint_probability(&raw, &schema, &[a, b, c]);
            }
        }
    }
    assert!((total - 1.0).abs() < 1e-3, "joint sums to {total}");

    // And the unconstrained exhaustive selectivity is 1.
    let vq = VirtualQuery::build(&table, &schema, &Query::default());
    let sel = exhaustive_selectivity(&raw, &schema, &vq);
    assert!((sel - 1.0).abs() < 1e-3);
}
