//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use uae::core::{ResMade, ResMadeConfig, VirtualQuery, VirtualSchema};
use uae::data::{Table, Value};
use uae::query::{
    predicate_region, q_error, Executor, PredOp, Predicate, Query, QueryRegion, Region,
};
use uae::tensor::ParamStore;

fn arb_table() -> impl Strategy<Value = Table> {
    // 2–4 columns, 20–80 rows, domains 2–12.
    (2usize..=4, 20usize..=80, proptest::collection::vec(2i64..=12, 2..=4), any::<u64>()).prop_map(
        |(ncols, rows, domains, seed)| {
            let ncols = ncols.min(domains.len());
            let cols = (0..ncols)
                .map(|c| {
                    let d = domains[c];
                    let vals: Vec<Value> = (0..rows)
                        .map(|r| {
                            let h = uae::data::synth::splitmix64(seed ^ (r as u64) << 8 ^ c as u64);
                            Value::Int((h % d as u64) as i64)
                        })
                        .collect();
                    (format!("c{c}"), vals)
                })
                .collect();
            Table::from_columns("prop", cols)
        },
    )
}

fn arb_query(ncols: usize) -> impl Strategy<Value = Query> {
    proptest::collection::vec((0..ncols, 0usize..=5, -1i64..=13), 0..=4).prop_map(|preds| {
        Query::new(
            preds
                .into_iter()
                .map(|(col, op, lit)| {
                    let op = match op {
                        0 => PredOp::Eq,
                        1 => PredOp::Ne,
                        2 => PredOp::Lt,
                        3 => PredOp::Le,
                        4 => PredOp::Gt,
                        _ => PredOp::Ge,
                    };
                    Predicate::new(col, op, Value::Int(lit))
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parallel executor agrees with a naive per-row predicate check.
    #[test]
    fn executor_matches_naive_scan(table in arb_table(), qseed in any::<u64>()) {
        let q = {
            let mut runner = proptest::test_runner::TestRunner::deterministic();
            let _ = qseed;
            arb_query(table.num_cols()).new_tree(&mut runner).expect("tree").current()
        };
        let exec = Executor::new(&table);
        let fast = exec.cardinality(&q);
        let region = QueryRegion::build(&table, &q);
        let slow = (0..table.num_rows())
            .filter(|&r| region.matches_row(&table.row_codes(r)))
            .count() as u64;
        prop_assert_eq!(fast, slow);
    }

    /// Predicate semantics: region membership equals direct value comparison.
    #[test]
    fn region_semantics_match_value_comparison(
        table in arb_table(),
        col in 0usize..4,
        op in 0usize..=5,
        lit in -1i64..=13,
    ) {
        let col = col % table.num_cols();
        let op = match op {
            0 => PredOp::Eq,
            1 => PredOp::Ne,
            2 => PredOp::Lt,
            3 => PredOp::Le,
            4 => PredOp::Gt,
            _ => PredOp::Ge,
        };
        let pred = Predicate::new(col, op.clone(), Value::Int(lit));
        let region = predicate_region(table.column(col), &pred);
        for r in 0..table.num_rows() {
            let v = table.column(col).value(r).as_int().unwrap();
            let expected = match op {
                PredOp::Eq => v == lit,
                PredOp::Ne => v != lit,
                PredOp::Lt => v < lit,
                PredOp::Le => v <= lit,
                PredOp::Gt => v > lit,
                PredOp::Ge => v >= lit,
                PredOp::In(_) => unreachable!(),
            };
            prop_assert_eq!(region.contains(table.column(col).code(r)), expected);
        }
    }

    /// Q-error is symmetric, ≥ 1, and 1 exactly on equality.
    #[test]
    fn q_error_laws(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let e = q_error(a, b);
        prop_assert!(e >= 1.0);
        prop_assert!((q_error(b, a) - e).abs() < 1e-9);
        prop_assert!((q_error(a, a) - 1.0).abs() < 1e-12);
    }

    /// Region algebra: complement partitions the domain; intersection is
    /// contained in both operands.
    #[test]
    fn region_algebra(domain in 1u32..200, codes in proptest::collection::vec(0u32..200, 0..40)) {
        let r = Region::from_codes(domain, codes);
        let c = r.complement();
        prop_assert_eq!(r.count() + c.count(), domain);
        for code in 0..domain {
            prop_assert!(r.contains(code) != c.contains(code));
        }
        let i = r.intersect(&c);
        prop_assert!(i.is_empty());
    }

    /// Factorized schemas preserve codes exactly.
    #[test]
    fn factorization_round_trip(domain in 2usize..5000, code_frac in 0.0f64..1.0) {
        let rows = 8;
        let vals: Vec<Value> = (0..rows)
            .map(|r| Value::Int(((r * domain / rows) % domain) as i64))
            .chain(std::iter::once(Value::Int(domain as i64 - 1)))
            .collect();
        let t = Table::from_columns("t", vec![("x".into(), vals)]);
        let schema = VirtualSchema::build(&t, 16);
        let d = t.column(0).domain_size();
        let code = ((code_frac * d as f64) as u32).min(d as u32 - 1);
        let v = schema.to_virtual_codes(&[code]);
        match schema.entries()[0] {
            uae::core::encoding::ColEntry::Single { vcol } => prop_assert_eq!(v[vcol], code),
            uae::core::encoding::ColEntry::Split { hi, lo, lo_bits } => {
                prop_assert_eq!((v[hi] << lo_bits) | v[lo], code);
            }
        }
    }

    /// An untrained model plus a random query still yields estimates in
    /// [0, 1] through progressive sampling.
    #[test]
    fn progressive_estimates_stay_in_unit_interval(table in arb_table(), seed in any::<u64>()) {
        let q = {
            let mut runner = proptest::test_runner::TestRunner::deterministic();
            arb_query(table.num_cols()).new_tree(&mut runner).unwrap().current()
        };
        let schema = VirtualSchema::build(&table, usize::MAX);
        let mut store = ParamStore::new();
        let model = ResMade::new(
            &mut store,
            &schema,
            &ResMadeConfig { hidden: 8, blocks: 1, seed },
        );
        let raw = model.snapshot(&store);
        let vq = VirtualQuery::build(&table, &schema, &q);
        let mut rng = uae::tensor::rng::seeded_rng(seed);
        let est = uae::core::infer::progressive_sample(&raw, &schema, &vq, 16, &mut rng);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&est), "estimate {}", est);
    }
}
