//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` harness, benchmark
//! groups, and `Bencher::iter` timing with median/mean reporting. No
//! statistical regression analysis — benches here exist to print
//! comparable wall-clock numbers in an offline container.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(None, &id.into().0, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target time hint (accepted for API compatibility; unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(Some(&self.name), &id.into().0, self.sample_size, f);
        self
    }

    /// Run one benchmark that borrows an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(Some(&self.name), &id.into().0, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name plus parameter.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `f`, once per requested sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        self.samples = (0..self.iters)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), iters: samples };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if b.samples.is_empty() {
        eprintln!("  {label}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    eprintln!(
        "  {label}: median {:>12?}  mean {:>12?}  ({} samples)",
        median,
        mean,
        b.samples.len()
    );
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trip() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::from_parameter(42), &2, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
            ran += 1;
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| ()));
        assert_eq!(ran, 2);
    }
}
