//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind `parking_lot`'s
//! poison-free API (`lock()` returns the guard directly). A poisoned std
//! lock is recovered by taking the inner guard — matching `parking_lot`'s
//! semantics, where a panicking holder simply releases the lock.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create an unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
