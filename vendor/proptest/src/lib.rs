//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! range and tuple strategies, `prop_map` / `prop_flat_map`, `Just`,
//! `any::<T>()`, `collection::vec`, the `proptest!` macro, and a
//! deterministic [`test_runner::TestRunner`]. Failing cases are reported
//! with the generated inputs but are **not shrunk** — with seeded
//! generation every failure replays exactly, which is what the tier-1
//! suite needs from it.

pub mod strategy;

pub mod test_runner {
    //! Deterministic case generation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Drives strategies; owns the RNG cases are drawn from.
    pub struct TestRunner {
        pub(crate) rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: every run generates the same cases.
        pub fn deterministic() -> Self {
            TestRunner { rng: StdRng::seed_from_u64(0x70_72_6f_70) }
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::deterministic()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::{Rng, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Clone {
        /// Draw an arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng.random::<f64>()
        }
    }
    impl Arbitrary for f32 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng.random::<f32>()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T` (uniform over the type's range).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, runner: &mut TestRunner) -> Self::Value {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                runner.rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.pick(runner)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `assert!` under a name property bodies expect.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name property bodies expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name property bodies expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails. Without shrinking there
/// is nothing to backtrack; the case is simply not counted as a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// The `proptest! { ... }` block: expands each property into a `#[test]`
/// that deterministically generates and runs `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::deterministic();
                #[allow(clippy::reversed_empty_ranges)]
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::ValueTree::current(
                            &$crate::strategy::Strategy::new_tree(&$strat, &mut runner)
                                .expect("strategy generation failed"),
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        for _ in 0..100 {
            let x = (1i64..=6).new_tree(&mut runner).unwrap().current();
            assert!((1..=6).contains(&x));
            let v =
                crate::collection::vec(0u32..10, 2..=4).new_tree(&mut runner).unwrap().current();
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let strat = crate::collection::vec(-1.0f32..1.0, 8usize);
        let mut r1 = crate::test_runner::TestRunner::deterministic();
        let mut r2 = crate::test_runner::TestRunner::deterministic();
        assert_eq!(
            strat.new_tree(&mut r1).unwrap().current(),
            strat.new_tree(&mut r2).unwrap().current()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies and config together.
        #[test]
        fn macro_generates_cases(x in 0usize..50, pair in (0u32..4, Just(7i64))) {
            prop_assert!(x < 50);
            let (a, b) = pair;
            prop_assert!(a < 4);
            prop_assert_eq!(b, 7);
        }

        #[test]
        fn flat_map_composes(v in (1usize..=3).prop_flat_map(|n| crate::collection::vec(0i64..10, n))) {
            prop_assert!((1..=3).contains(&v.len()));
        }
    }
}
