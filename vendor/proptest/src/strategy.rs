//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::test_runner::TestRunner;

/// A generated value plus (in real proptest) its shrink lattice. This
/// stand-in does not shrink, so the tree is just the value.
pub trait ValueTree {
    /// The value type produced.
    type Value;
    /// The current (root) value.
    fn current(&self) -> Self::Value;
}

/// A single generated value.
#[derive(Debug, Clone)]
pub struct Plucked<T>(pub T);

impl<T: Clone> ValueTree for Plucked<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The value type this strategy generates.
    type Value: Clone;

    /// Draw one value.
    fn pick(&self, runner: &mut TestRunner) -> Self::Value;

    /// Draw one value wrapped as a [`ValueTree`]. Generation here never
    /// fails; the `Result` mirrors the upstream signature.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Plucked<Self::Value>, String> {
        Ok(Plucked(self.pick(runner)))
    }

    /// Transform generated values.
    fn prop_map<U: Clone, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-draws up to a bounded number
    /// of times, then panics — matching upstream's local-rejection cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn pick(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).pick(runner)
    }
}

/// Always yields its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn pick(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.pick(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn pick(&self, runner: &mut TestRunner) -> U::Value {
        (self.f)(self.inner.pick(runner)).pick(runner)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn pick(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..256 {
            let v = self.inner.pick(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 256 consecutive cases: {}", self.whence);
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, runner: &mut TestRunner) -> $t {
                runner.rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, runner: &mut TestRunner) -> $t {
                runner.rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(runner),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
