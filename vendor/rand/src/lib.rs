//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand`'s API it actually uses:
//! [`Rng`] (the object-safe core generator), [`RngExt`] (the generic
//! convenience layer: `random`, `random_range`), [`SeedableRng`], and
//! [`rngs::StdRng`] — implemented as xoshiro256++ seeded via splitmix64.
//! All draws in this repository come from explicitly seeded generators, so
//! statistical quality and determinism are what matter; compatibility with
//! upstream `rand`'s exact streams does not.

use std::ops::{Range, RangeInclusive};

/// Object-safe core generator: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Deterministically construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Widening-multiply range reduction (Lemire); the bias for
                // the span sizes used here is far below observable levels.
                let x = rng.next_u64() as u128;
                (lo_w + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + u * (hi - lo)
    }
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform element of the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Values producible by [`RngExt::random`] (the "standard" distribution:
/// unit interval for floats, full range for integers, fair coin for bool).
pub trait Standard: Sized {
    /// One standard draw.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for u64 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for i64 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Generic convenience layer over [`Rng`], blanket-implemented for every
/// generator (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A standard draw of `T` (see [`Standard`]).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform draw from `range`.
    #[inline]
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-initialized with splitmix64. Deliberately not `Clone`
    /// — independent streams are derived by reseeding.
    #[derive(Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut x);
            }
            StdRng::from_state(s)
        }
    }

    impl StdRng {
        /// Snapshot the generator state, for checkpoint/resume: a
        /// generator restored via [`StdRng::from_state`] continues the
        /// stream exactly where this one stands.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstruct a generator from a [`StdRng::state`] snapshot.
        /// The all-zero state (invalid for xoshiro, and never produced by
        /// a seeded generator) is mapped to a fixed valid state.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The invalid all-zero state is normalized, not produced as-is.
        let z = StdRng::from_state([0, 0, 0, 0]);
        assert_ne!(z.state(), [0, 0, 0, 0]);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_hi = false;
        for _ in 0..2000 {
            let x = rng.random_range(-2..=2i64);
            assert!((-2..=2).contains(&x));
            saw_hi |= x == 2;
            let y = rng.random_range(0..5usize);
            assert!(y < 5);
            let f = rng.random_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(saw_hi, "inclusive upper bound never drawn");
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn Rng = &mut rng;
        let x: f64 = dynr.random();
        assert!((0.0..1.0).contains(&x));
    }
}
